(* Lowering: typed AST (Cminus.Tast) -> IR (Ir).

   Design notes:
   - Scalar locals whose address is never taken live in virtual registers
     and never touch simulated memory, mirroring the paper's decision to
     instrument *after* register promotion (section 6.1).
   - Address-taken locals, arrays, structs and per-call-site vararg save
     areas become frame slots; frames are laid out bottom-up in
     declaration order so that classic stack-smashing overflows walk
     upward through later locals, spilled parameters, the saved frame
     pointer and the return token — the x86 layout the attack suite
     (Table 3) assumes.
   - Calls to variadic functions spill promoted varargs to a caller-side
     slot with ordinary [Store]s and append [va_ptr; va_count] to the
     argument list. *)

open Ir
module T = Cminus.Tast
module C = Cminus.Ctypes

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Type mapping                                                         *)
(* ------------------------------------------------------------------ *)

let ity_of_ikind : C.ikind -> ity = function
  | C.IChar -> I8
  | C.IUChar -> U8
  | C.IShort -> I16
  | C.IUShort -> U16
  | C.IInt -> I32
  | C.IUInt -> U32
  | C.ILong -> I64
  | C.IULong -> U64

let rec ity_of env (ty : C.ty) : ity =
  match C.resolve env ty with
  | C.Tint k -> ity_of_ikind k
  | C.Tfloat C.FFloat -> F32
  | C.Tfloat C.FDouble -> F64
  | C.Tptr _ -> P
  | C.Tarray _ -> P (* decayed *)
  | C.Tfunc _ -> P
  | C.Tvoid -> error "ity_of: void has no value type"
  | C.Tstruct _ | C.Tunion _ -> error "ity_of: composite has no scalar type"
  | C.Tnamed _ -> ity_of env ty

(** Byte offsets of pointer-typed scalars inside a value of type [ty]. *)
let rec ptr_offsets env (ty : C.ty) : int list =
  match C.resolve env ty with
  | C.Tptr _ -> [ 0 ]
  | C.Tarray (elem, n) ->
      let inner = ptr_offsets env elem in
      if inner = [] then []
      else
        let esz = C.size_of env elem in
        List.concat
          (List.init (max n 0) (fun i ->
               List.map (fun o -> o + (i * esz)) inner))
  | C.Tstruct _ | C.Tunion _ ->
      let comp = Option.get (C.fields_of env ty) in
      List.concat_map
        (fun (f : C.field) ->
          List.map (fun o -> o + f.C.foffset) (ptr_offsets env f.C.fty))
        comp.C.cfields
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Function-lowering context                                            *)
(* ------------------------------------------------------------------ *)

type bstate = {
  mutable binsts : inst list;  (** reversed *)
  mutable bterm : terminator option;
}

type place =
  | Preg of reg * ity
  | Pmem of operand * C.ty  (** address operand, pointee C type *)

type fctx = {
  env : C.env;
  funs : (string, C.fsig) Hashtbl.t;  (** all known functions *)
  defined : (string, unit) Hashtbl.t;  (** functions defined in this unit *)
  strings : (string, string) Hashtbl.t;  (** literal -> global name *)
  mutable string_order : (string * string) list;  (** (gname, contents) rev *)
  mutable nregs : int;
  mutable blocks : bstate array;
  mutable nblocks : int;
  mutable cur : int;
  var_regs : (string, reg * ity) Hashtbl.t;
  var_slots : (string, int) Hashtbl.t;
  mutable slots : slot list;  (** reversed *)
  mutable nslots : int;
  mutable frame_off : int;
  mutable break_stack : int list;
  mutable continue_stack : int list;
  mutable va_regs : (reg * reg) option;
  frets : ity list;
}

let fresh ctx =
  let r = ctx.nregs in
  ctx.nregs <- r + 1;
  r

let grow_blocks ctx =
  if ctx.nblocks >= Array.length ctx.blocks then begin
    let bigger =
      Array.init
        (max 8 (2 * Array.length ctx.blocks))
        (fun i ->
          if i < Array.length ctx.blocks then ctx.blocks.(i)
          else { binsts = []; bterm = None })
    in
    ctx.blocks <- bigger
  end

let new_block ctx =
  grow_blocks ctx;
  let id = ctx.nblocks in
  ctx.blocks.(id) <- { binsts = []; bterm = None };
  ctx.nblocks <- id + 1;
  id

let emit ctx inst =
  let b = ctx.blocks.(ctx.cur) in
  if b.bterm = None then b.binsts <- inst :: b.binsts

let terminate ctx term =
  let b = ctx.blocks.(ctx.cur) in
  if b.bterm = None then b.bterm <- term |> Option.some

let switch_to ctx id = ctx.cur <- id

let new_slot ctx ~name ~size ~align ~ptrs =
  let off = Machine.Memory.align_up ctx.frame_off align in
  let id = ctx.nslots in
  ctx.slots <-
    { sl_name = name; sl_offset = off; sl_size = size; sl_ptr_offsets = ptrs }
    :: ctx.slots;
  ctx.nslots <- id + 1;
  ctx.frame_off <- off + size;
  id

let intern_string ctx s =
  match Hashtbl.find_opt ctx.strings s with
  | Some g -> g
  | None ->
      let g = Printf.sprintf ".str.%d" (Hashtbl.length ctx.strings) in
      Hashtbl.replace ctx.strings s g;
      ctx.string_order <- (g, s) :: ctx.string_order;
      g

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let imm_of_int64 (v : int64) = ImmI (Int64.to_int v)

let ir_binop : Cminus.Ast.binop -> binop = function
  | Badd -> Add
  | Bsub -> Sub
  | Bmul -> Mul
  | Bdiv -> Div
  | Bmod -> Rem
  | Bband -> And
  | Bbor -> Or
  | Bbxor -> Xor
  | Bshl -> Shl
  | Bshr -> Shr
  | _ -> error "ir_binop: not an arithmetic operator"

let ir_cmpop : Cminus.Ast.binop -> cmpop = function
  | Beq -> Ceq
  | Bne -> Cne
  | Blt -> Clt
  | Ble -> Cle
  | Bgt -> Cgt
  | Bge -> Cge
  | _ -> error "ir_cmpop: not a comparison"

let rec lower_expr ctx (e : T.texpr) : operand =
  match e.T.tdesc with
  | T.Cint v -> imm_of_int64 v
  | T.Cfloat f -> ImmF f
  | T.Cstr s -> Glob (intern_string ctx s)
  | T.Cfunc f -> Func f
  | T.Lval lv -> read_place ctx (lower_lval ctx lv)
  | T.Addrof lv -> place_addr ctx (lower_lval ctx lv)
  | T.Unop (u, a) -> (
      let a' = lower_expr ctx a in
      let t = ity_of ctx.env a.T.tty in
      let r = fresh ctx in
      match u with
      | Cminus.Ast.Uneg ->
          emit ctx
            (Bin (r, Sub, t, (if ity_is_float t then ImmF 0.0 else ImmI 0), a'));
          Reg r
      | Cminus.Ast.Unot ->
          let zero = if ity_is_float t then ImmF 0.0 else ImmI 0 in
          emit ctx (Cmp (r, Ceq, t, a', zero));
          Reg r
      | Cminus.Ast.Ubnot ->
          emit ctx (Bin (r, Xor, t, a', ImmI (-1)));
          Reg r)
  | T.Binop ((Cminus.Ast.Bland | Cminus.Ast.Blor) as op, a, b) ->
      lower_shortcircuit ctx op a b
  | T.Binop ((Beq | Bne | Blt | Ble | Bgt | Bge) as op, a, b) ->
      let a' = lower_expr ctx a in
      let b' = lower_expr ctx b in
      let t = ity_of ctx.env a.T.tty in
      let r = fresh ctx in
      emit ctx (Cmp (r, ir_cmpop op, t, a', b'));
      Reg r
  | T.Binop (op, a, b) ->
      let a' = lower_expr ctx a in
      let b' = lower_expr ctx b in
      let t = ity_of ctx.env e.T.tty in
      let r = fresh ctx in
      emit ctx (Bin (r, ir_binop op, t, a', b'));
      Reg r
  | T.Ptradd (p, i, scale) ->
      let p' = lower_expr ctx p in
      let i' = lower_expr ctx i in
      let off =
        match i' with
        | ImmI n -> ImmI (n * scale)
        | _ when scale = 1 -> i'
        | _ ->
            let r = fresh ctx in
            emit ctx (Bin (r, Mul, I64, i', ImmI scale));
            Reg r
      in
      let r = fresh ctx in
      emit ctx (Gep (r, p', off, None));
      Reg r
  | T.Fieldaddr (p, off, size) ->
      let p' = lower_expr ctx p in
      let r = fresh ctx in
      emit ctx (Gep (r, p', ImmI off, Some size));
      Reg r
  | T.Ptrdiff (p, q, scale) ->
      let p' = lower_expr ctx p in
      let q' = lower_expr ctx q in
      let d = fresh ctx in
      emit ctx (Bin (d, Sub, I64, p', q'));
      if scale = 1 then Reg d
      else begin
        let r = fresh ctx in
        emit ctx (Bin (r, Div, I64, Reg d, ImmI scale));
        Reg r
      end
  | T.Cond (c, a, b) ->
      let is_void = C.resolve ctx.env e.T.tty = C.Tvoid in
      let c' = lower_cond ctx c in
      let then_b = new_block ctx in
      let else_b = new_block ctx in
      let join_b = new_block ctx in
      terminate ctx (TBr (c', then_b, else_b));
      let r = if is_void then -1 else fresh ctx in
      let t = if is_void then I32 else ity_of ctx.env e.T.tty in
      switch_to ctx then_b;
      let av = lower_expr ctx a in
      if not is_void then emit ctx (Mov (r, t, av));
      terminate ctx (TJmp join_b);
      switch_to ctx else_b;
      let bv = lower_expr ctx b in
      if not is_void then emit ctx (Mov (r, t, bv));
      terminate ctx (TJmp join_b);
      switch_to ctx join_b;
      if is_void then ImmI 0 else Reg r
  | T.Cast inner -> (
      let v = lower_expr ctx inner in
      match C.resolve ctx.env e.T.tty with
      | C.Tvoid -> ImmI 0
      | _ ->
          let to_ = ity_of ctx.env e.T.tty in
          let from_ = ity_of ctx.env inner.T.tty in
          if equal_ity to_ from_ || (to_ = P && from_ = P) then v
          else
            match (v, ity_is_float to_, ity_is_float from_) with
            | ImmI n, false, false -> ImmI (norm_int to_ n)
            | ImmI n, true, false -> ImmF (float_of_int n)
            | ImmF f, false, true -> ImmI (norm_int to_ (int_of_float f))
            | ImmF f, true, true -> ImmF f
            | _ ->
                let r = fresh ctx in
                emit ctx (Cast (r, to_, from_, v));
                Reg r)
  | T.Call (callee, args) -> lower_call ctx e.T.tty callee args
  | T.Assign (lv, rhs) -> (
      let lty = T.lval_ty lv in
      match C.resolve ctx.env lty with
      | C.Tstruct _ | C.Tunion _ ->
          (* struct assignment: memcpy(dst, src, size); the SoftBound
             memcpy wrapper then copies metadata for inner pointers *)
          let dst = place_addr ctx (lower_lval ctx lv) in
          let src =
            match rhs.T.tdesc with
            | T.Lval src_lv -> place_addr ctx (lower_lval ctx src_lv)
            | _ -> error "struct assignment from non-lvalue"
          in
          let size = C.size_of ctx.env lty in
          emit_memcpy ctx ~dst ~src ~size
            ~has_ptrs:(C.contains_pointer ctx.env lty);
          dst
      | _ ->
          let v = lower_expr ctx rhs in
          let place = lower_lval ctx lv in
          write_place ctx place v;
          v)
  | T.Assignop (op, lv, rhs, opty) -> (
      let place = lower_lval ctx lv in
      let lty = T.lval_ty lv in
      let old = read_place ctx place in
      match C.resolve ctx.env lty with
      | C.Tptr pointee ->
          let scale = C.size_of ctx.env pointee in
          let rhs' = lower_expr ctx rhs in
          let off =
            match (rhs', op) with
            | ImmI n, Cminus.Ast.Badd -> ImmI (n * scale)
            | ImmI n, Cminus.Ast.Bsub -> ImmI (-n * scale)
            | _, _ ->
                let scaled =
                  if scale = 1 then rhs'
                  else begin
                    let r = fresh ctx in
                    emit ctx (Bin (r, Mul, I64, rhs', ImmI scale));
                    Reg r
                  end
                in
                if op = Cminus.Ast.Badd then scaled
                else begin
                  let r = fresh ctx in
                  emit ctx (Bin (r, Sub, I64, ImmI 0, scaled));
                  Reg r
                end
          in
          let r = fresh ctx in
          emit ctx (Gep (r, old, off, None));
          write_place ctx place (Reg r);
          Reg r
      | _ ->
          let rhs' = lower_expr ctx rhs in
          let opt = ity_of ctx.env opty in
          let lt = ity_of ctx.env lty in
          let oldc =
            if equal_ity opt lt then old
            else begin
              let r = fresh ctx in
              emit ctx (Cast (r, opt, lt, old));
              Reg r
            end
          in
          let r = fresh ctx in
          emit ctx (Bin (r, ir_binop op, opt, oldc, rhs'));
          let back =
            if equal_ity opt lt then Reg r
            else begin
              let r2 = fresh ctx in
              emit ctx (Cast (r2, lt, opt, Reg r));
              Reg r2
            end
          in
          write_place ctx place back;
          back)
  | T.Incrdecr (is_incr, is_pre, lv, scale) -> (
      let place = lower_lval ctx lv in
      let lty = T.lval_ty lv in
      let old = read_place ctx place in
      (* for register-resident lvalues, read_place returns the live
         register; postfix forms need a snapshot of the old value *)
      let old =
        match (place, is_pre) with
        | Preg (_, t), false ->
            let r = fresh ctx in
            emit ctx (Mov (r, t, old));
            Reg r
        | _ -> old
      in
      match C.resolve ctx.env lty with
      | C.Tptr _ ->
          let r = fresh ctx in
          emit ctx (Gep (r, old, ImmI (if is_incr then scale else -scale), None));
          write_place ctx place (Reg r);
          if is_pre then Reg r else old
      | _ ->
          let t = ity_of ctx.env lty in
          let one = if ity_is_float t then ImmF 1.0 else ImmI 1 in
          let r = fresh ctx in
          emit ctx (Bin (r, (if is_incr then Add else Sub), t, old, one));
          write_place ctx place (Reg r);
          if is_pre then Reg r else old)
  | T.Comma (a, b) ->
      ignore (lower_expr ctx a);
      lower_expr ctx b
  | T.Va_start lv ->
      let va_ptr, _ =
        match ctx.va_regs with
        | Some regs -> regs
        | None -> error "va_start outside a variadic function"
      in
      write_place ctx (lower_lval ctx lv) (Reg va_ptr);
      ImmI 0
  | T.Va_arg (lv, ty) ->
      let place = lower_lval ctx lv in
      let cur = read_place ctx place in
      let t = ity_of ctx.env ty in
      let v = fresh ctx in
      emit ctx (Load (v, t, cur));
      let nxt = fresh ctx in
      emit ctx (Gep (nxt, cur, ImmI 8, None));
      write_place ctx place (Reg nxt);
      Reg v
  | T.Setbound (lv, n) -> (
      let place = lower_lval ctx lv in
      let n' = lower_expr ctx n in
      match place with
      | Pmem (addr, _) ->
          emit ctx (SetBoundMark (addr, n'));
          ImmI 0
      | Preg _ -> error "setbound target must live in memory")

and lower_shortcircuit ctx op a b : operand =
  let r = fresh ctx in
  let rhs_b = new_block ctx in
  let short_b = new_block ctx in
  let join_b = new_block ctx in
  let c = lower_cond ctx a in
  (match op with
  | Cminus.Ast.Bland -> terminate ctx (TBr (c, rhs_b, short_b))
  | Cminus.Ast.Blor -> terminate ctx (TBr (c, short_b, rhs_b))
  | _ -> assert false);
  switch_to ctx short_b;
  emit ctx
    (Mov (r, I32, ImmI (if op = Cminus.Ast.Bland then 0 else 1)));
  terminate ctx (TJmp join_b);
  switch_to ctx rhs_b;
  let bv = lower_cond ctx b in
  (* normalize to 0/1 *)
  emit ctx (Cmp (r, Cne, I32, bv, ImmI 0));
  terminate ctx (TJmp join_b);
  switch_to ctx join_b;
  Reg r

(** Lower an expression used as a branch condition, returning an integer
    operand (floats are compared against 0.0 explicitly). *)
and lower_cond ctx (e : T.texpr) : operand =
  let v = lower_expr ctx e in
  match C.resolve ctx.env e.T.tty with
  | C.Tfloat _ ->
      let r = fresh ctx in
      emit ctx (Cmp (r, Cne, ity_of ctx.env e.T.tty, v, ImmF 0.0));
      Reg r
  | _ -> v

and emit_memcpy ctx ~dst ~src ~size ~has_ptrs =
  let r = fresh ctx in
  emit ctx
    (Call
       {
         rets = [ r ];
         callee = Func "memcpy";
         sg = { cargs = [ P; P; I64 ]; crets = [ P ]; cvariadic = false };
         hints = (if has_ptrs then [] else [ "memcpy-noptr" ]);
         args = [ dst; src; ImmI size ];
       })

and lower_call ctx ret_ty (callee : T.callee) (args : T.texpr list) : operand =
  let sg = callee.T.csig in
  let nfixed = List.length sg.C.params in
  (* the paper's memcpy heuristic (section 5.2): inspect the call-site
     argument types; if neither operand's pointee can contain pointers,
     the metadata copy can be skipped *)
  (* conversion casts to the void-pointer parameter type hide the
     operand's real type; peel them to see what the programmer passed *)
  let rec peel (a : T.texpr) =
    match a.T.tdesc with T.Cast inner -> peel inner | _ -> a
  in
  let hints =
    match callee.T.cfun with
    | T.Cdirect ("memcpy" | "memmove") ->
        let pointee_ptr_free (a : T.texpr) =
          match C.resolve ctx.env (peel a).T.tty with
          | C.Tptr t ->
              (* void* proves nothing: be conservative *)
              C.resolve ctx.env t <> C.Tvoid
              && not (C.contains_pointer ctx.env t)
          | _ -> false
        in
        if
          List.length args >= 2
          && pointee_ptr_free (List.nth args 0)
          && pointee_ptr_free (List.nth args 1)
        then [ "memcpy-noptr" ]
        else []
    | T.Cdirect "free" -> (
        (* paper section 5.2, "Memory reuse and stale metadata": clear
           metadata on free only when the static type suggests the block
           holds pointers *)
        match args with
        | [ a ] -> (
            match C.resolve ctx.env (peel a).T.tty with
            | C.Tptr t when C.contains_pointer ctx.env t -> [ "free-withmeta" ]
            | _ -> [])
        | _ -> [])
    | _ -> []
  in
  let args' = List.map (lower_expr ctx) args in
  let fixed = List.filteri (fun i _ -> i < nfixed) args' in
  let varargs = List.filteri (fun i _ -> i >= nfixed) args' in
  let vararg_tys =
    List.filteri (fun i _ -> i >= nfixed) (List.map (fun a -> a.T.tty) args)
  in
  let cargs_fixed = List.map (ity_of ctx.env) sg.C.params in
  let all_args, all_cargs =
    if not sg.C.variadic then (fixed, cargs_fixed)
    else begin
      (* spill promoted varargs to a fresh save-area slot *)
      let n = List.length varargs in
      let slot =
        new_slot ctx
          ~name:(Printf.sprintf "$va%d" ctx.nslots)
          ~size:(max 8 (8 * n))
          ~align:8
          ~ptrs:
            (List.concat
               (List.mapi
                  (fun i ty ->
                    if C.is_pointer ctx.env ty then [ 8 * i ] else [])
                  vararg_tys))
      in
      let base = fresh ctx in
      emit ctx (Slotaddr (base, slot));
      List.iteri
        (fun i (v, ty) ->
          let t = ity_of ctx.env ty in
          (* widen sub-8-byte values to 8 bytes for the save area *)
          let v, t =
            match t with
            | I8 | I16 | I32 ->
                let r = fresh ctx in
                emit ctx (Cast (r, I64, t, v));
                (Reg r, I64)
            | U8 | U16 | U32 ->
                let r = fresh ctx in
                emit ctx (Cast (r, U64, t, v));
                (Reg r, U64)
            | F32 ->
                let r = fresh ctx in
                emit ctx (Cast (r, F64, F32, v));
                (Reg r, F64)
            | t -> (v, t)
          in
          let addr = fresh ctx in
          emit ctx (Gep (addr, Reg base, ImmI (8 * i), None));
          emit ctx (Store (t, Reg addr, v)))
        (List.combine varargs vararg_tys);
      (fixed @ [ Reg base; ImmI n ], cargs_fixed @ [ P; I64 ])
    end
  in
  let crets =
    match C.resolve ctx.env ret_ty with
    | C.Tvoid -> []
    | _ -> [ ity_of ctx.env ret_ty ]
  in
  let callee_op =
    match callee.T.cfun with
    | T.Cdirect name -> Func name
    | T.Cindirect e -> lower_expr ctx e
  in
  let rets = List.map (fun _ -> fresh ctx) crets in
  emit ctx
    (Call
       {
         rets;
         callee = callee_op;
         sg = { cargs = all_cargs; crets; cvariadic = sg.C.variadic };
         hints;
         args = all_args;
       });
  match rets with [ r ] -> Reg r | _ -> ImmI 0

(* ------------------------------------------------------------------ *)
(* Lvalues                                                              *)
(* ------------------------------------------------------------------ *)

and lower_lval ctx (lv : T.lval) : place =
  match lv with
  | T.Lvar v -> (
      match v.T.vkind with
      | T.Vglobal -> Pmem (Glob v.T.vname, v.T.vty)
      | _ -> (
          match Hashtbl.find_opt ctx.var_regs v.T.vname with
          | Some (r, t) -> Preg (r, t)
          | None -> (
              match Hashtbl.find_opt ctx.var_slots v.T.vname with
              | Some slot ->
                  let r = fresh ctx in
                  emit ctx (Slotaddr (r, slot));
                  Pmem (Reg r, v.T.vty)
              | None -> error "unbound variable %s" v.T.vname)))
  | T.Lmem addr ->
      let a = lower_expr ctx addr in
      let pointee =
        match C.resolve ctx.env addr.T.tty with
        | C.Tptr t -> t
        | _ -> error "Lmem with non-pointer address"
      in
      Pmem (a, pointee)

and read_place ctx (p : place) : operand =
  match p with
  | Preg (r, _) -> Reg r
  | Pmem (addr, ty) -> (
      match C.resolve ctx.env ty with
      | C.Tstruct _ | C.Tunion _ | C.Tarray _ ->
          (* composite reads yield their address (handled by callers) *)
          addr
      | C.Tvoid -> error "read of void lvalue"
      | _ ->
          let r = fresh ctx in
          emit ctx (Load (r, ity_of ctx.env ty, addr));
          Reg r)

and write_place ctx (p : place) (v : operand) =
  match p with
  | Preg (r, t) -> emit ctx (Mov (r, t, v))
  | Pmem (addr, ty) -> emit ctx (Store (ity_of ctx.env ty, addr, v))

and place_addr _ctx (p : place) : operand =
  match p with
  | Preg _ -> error "address of register-resident value (typechecker bug)"
  | Pmem (addr, _) -> addr

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt ctx (s : T.tstmt) : unit =
  match s with
  | T.Texpr e -> ignore (lower_expr ctx e)
  | T.Tblock body -> List.iter (lower_stmt ctx) body
  | T.Tif (c, then_, else_) ->
      let c' = lower_cond ctx c in
      let then_b = new_block ctx in
      let else_b = new_block ctx in
      let join_b = new_block ctx in
      terminate ctx (TBr (c', then_b, else_b));
      switch_to ctx then_b;
      List.iter (lower_stmt ctx) then_;
      terminate ctx (TJmp join_b);
      switch_to ctx else_b;
      List.iter (lower_stmt ctx) else_;
      terminate ctx (TJmp join_b);
      switch_to ctx join_b
  | T.Twhile (c, body) ->
      let head_b = new_block ctx in
      let body_b = new_block ctx in
      let exit_b = new_block ctx in
      terminate ctx (TJmp head_b);
      switch_to ctx head_b;
      let c' = lower_cond ctx c in
      terminate ctx (TBr (c', body_b, exit_b));
      switch_to ctx body_b;
      ctx.break_stack <- exit_b :: ctx.break_stack;
      ctx.continue_stack <- head_b :: ctx.continue_stack;
      List.iter (lower_stmt ctx) body;
      ctx.break_stack <- List.tl ctx.break_stack;
      ctx.continue_stack <- List.tl ctx.continue_stack;
      terminate ctx (TJmp head_b);
      switch_to ctx exit_b
  | T.Tdowhile (body, c) ->
      let body_b = new_block ctx in
      let cond_b = new_block ctx in
      let exit_b = new_block ctx in
      terminate ctx (TJmp body_b);
      switch_to ctx body_b;
      ctx.break_stack <- exit_b :: ctx.break_stack;
      ctx.continue_stack <- cond_b :: ctx.continue_stack;
      List.iter (lower_stmt ctx) body;
      ctx.break_stack <- List.tl ctx.break_stack;
      ctx.continue_stack <- List.tl ctx.continue_stack;
      terminate ctx (TJmp cond_b);
      switch_to ctx cond_b;
      let c' = lower_cond ctx c in
      terminate ctx (TBr (c', body_b, exit_b));
      switch_to ctx exit_b
  | T.Tfor (init, cond, step, body) ->
      List.iter (lower_stmt ctx) init;
      let head_b = new_block ctx in
      let body_b = new_block ctx in
      let step_b = new_block ctx in
      let exit_b = new_block ctx in
      terminate ctx (TJmp head_b);
      switch_to ctx head_b;
      (match cond with
      | None -> terminate ctx (TJmp body_b)
      | Some c ->
          let c' = lower_cond ctx c in
          terminate ctx (TBr (c', body_b, exit_b)));
      switch_to ctx body_b;
      ctx.break_stack <- exit_b :: ctx.break_stack;
      ctx.continue_stack <- step_b :: ctx.continue_stack;
      List.iter (lower_stmt ctx) body;
      ctx.break_stack <- List.tl ctx.break_stack;
      ctx.continue_stack <- List.tl ctx.continue_stack;
      terminate ctx (TJmp step_b);
      switch_to ctx step_b;
      List.iter (lower_stmt ctx) step;
      terminate ctx (TJmp head_b);
      switch_to ctx exit_b
  | T.Treturn None ->
      terminate ctx (TRet (List.map (fun _ -> ImmI 0) ctx.frets));
      switch_to ctx (new_block ctx)
  | T.Treturn (Some e) ->
      let v = lower_expr ctx e in
      terminate ctx (TRet [ v ]);
      switch_to ctx (new_block ctx)
  | T.Tbreak -> (
      match ctx.break_stack with
      | target :: _ ->
          terminate ctx (TJmp target);
          switch_to ctx (new_block ctx)
      | [] -> error "break outside a loop or switch")
  | T.Tcontinue -> (
      match ctx.continue_stack with
      | target :: _ ->
          terminate ctx (TJmp target);
          switch_to ctx (new_block ctx)
      | [] -> error "continue outside a loop")
  | T.Tswitch (e, cases) ->
      let v = lower_expr ctx e in
      let exit_b = new_block ctx in
      let case_blocks = List.map (fun _ -> new_block ctx) cases in
      (* build the dispatch table *)
      let table = ref [] and default = ref exit_b in
      List.iteri
        (fun i (labels, _) ->
          let b = List.nth case_blocks i in
          match labels with
          | None -> default := b
          | Some ls ->
              List.iter
                (fun l -> table := (Int64.to_int l, b) :: !table)
                ls)
        cases;
      terminate ctx (TSwitch (v, List.rev !table, !default));
      (* bodies with C fallthrough semantics *)
      ctx.break_stack <- exit_b :: ctx.break_stack;
      List.iteri
        (fun i (_, body) ->
          switch_to ctx (List.nth case_blocks i);
          List.iter (lower_stmt ctx) body;
          let next =
            if i + 1 < List.length case_blocks then
              List.nth case_blocks (i + 1)
            else exit_b
          in
          terminate ctx (TJmp next))
        cases;
      ctx.break_stack <- List.tl ctx.break_stack;
      switch_to ctx exit_b
  | T.Tlocal_init (v, init) -> lower_local_init ctx v init

and lower_local_init ctx (v : T.var_ref) (init : T.init) =
  match init with
  | T.Iscalar e ->
      let x = lower_expr ctx e in
      write_place ctx (lower_lval ctx (T.Lvar v)) x
  | T.Icomposite items ->
      (* composite locals always have a slot; zero it, then store the
         initialized elements (C semantics: unmentioned fields are 0) *)
      let slot =
        match Hashtbl.find_opt ctx.var_slots v.T.vname with
        | Some s -> s
        | None -> error "composite init of non-slot local %s" v.T.vname
      in
      let base = fresh ctx in
      emit ctx (Slotaddr (base, slot));
      let size = C.size_of ctx.env v.T.vty in
      let r = fresh ctx in
      emit ctx
        (Call
           {
             rets = [ r ];
             callee = Func "memset";
             sg = { cargs = [ P; I32; I64 ]; crets = [ P ]; cvariadic = false };
             hints = [];
             args = [ Reg base; ImmI 0; ImmI size ];
           });
      List.iter
        (fun (off, e) ->
          let x = lower_expr ctx e in
          let addr = fresh ctx in
          emit ctx (Gep (addr, Reg base, ImmI off, None));
          emit ctx (Store (ity_of ctx.env e.T.tty, Reg addr, x)))
        items

(* ------------------------------------------------------------------ *)
(* Functions                                                            *)
(* ------------------------------------------------------------------ *)

let lower_fundef ~env ~funs ~defined ~strings ~string_order (f : T.tfundef) :
    func =
  let ctx =
    {
      env;
      funs;
      defined;
      strings;
      string_order = !string_order;
      nregs = 0;
      blocks = Array.init 8 (fun _ -> { binsts = []; bterm = None });
      nblocks = 0;
      cur = 0;
      var_regs = Hashtbl.create 16;
      var_slots = Hashtbl.create 16;
      slots = [];
      nslots = 0;
      frame_off = 0;
      break_stack = [];
      continue_stack = [];
      va_regs = None;
      frets =
        (match C.resolve env f.T.tfsig.C.ret with
        | C.Tvoid -> []
        | t -> [ ity_of env t ]);
    }
  in
  let entry = new_block ctx in
  switch_to ctx entry;
  (* parameter registers, in order; hidden va regs last *)
  let fparams =
    List.map
      (fun (name, ty) ->
        let r = fresh ctx in
        let t = ity_of env ty in
        Hashtbl.replace ctx.var_regs name (r, t);
        (r, t))
      f.T.tfparams
  in
  if f.T.tfsig.C.variadic then begin
    let va_ptr = fresh ctx in
    let va_count = fresh ctx in
    ctx.va_regs <- Some (va_ptr, va_count)
  end;
  (* locals first (registers for unaddressed scalars, slots otherwise);
     slot offsets grow upward in declaration order, so an overflowing
     buffer walks up through later locals *)
  List.iter
    (fun (l : T.local) ->
      if l.T.laddressed then begin
        let slot =
          new_slot ctx ~name:l.T.lname ~size:(C.size_of env l.T.lty)
            ~align:(C.align_of env l.T.lty) ~ptrs:(ptr_offsets env l.T.lty)
        in
        Hashtbl.replace ctx.var_slots l.T.lname slot
      end
      else begin
        let r = fresh ctx in
        Hashtbl.replace ctx.var_regs l.T.lname (r, ity_of env l.T.lty)
      end)
    f.T.tflocals;
  (* addressed parameters are spilled above the locals, just below the
     saved frame pointer — as x86 calling conventions place them *)
  List.iter
    (fun pname ->
      let ty = List.assoc pname f.T.tfparams in
      let r, t = Hashtbl.find ctx.var_regs pname in
      let slot =
        new_slot ctx ~name:pname ~size:(C.size_of env ty)
          ~align:(C.align_of env ty) ~ptrs:(ptr_offsets env ty)
      in
      let addr = fresh ctx in
      emit ctx (Slotaddr (addr, slot));
      emit ctx (Store (t, Reg addr, Reg r));
      Hashtbl.remove ctx.var_regs pname;
      Hashtbl.replace ctx.var_slots pname slot)
    f.T.tfaddressed_params;
  List.iter (lower_stmt ctx) f.T.tfbody;
  (* implicit return *)
  terminate ctx (TRet (List.map (fun _ -> ImmI 0) ctx.frets));
  string_order := ctx.string_order;
  let fblocks =
    Array.init ctx.nblocks (fun i ->
        let b = ctx.blocks.(i) in
        {
          insts = List.rev b.binsts;
          term = Option.value b.bterm ~default:TUnreachable;
        })
  in
  let fparams_full =
    match ctx.va_regs with
    | Some (p, c) -> fparams @ [ (p, P); (c, I64) ]
    | None -> fparams
  in
  {
    fname = f.T.tfname;
    fparams = fparams_full;
    frets = ctx.frets;
    fvariadic = f.T.tfsig.C.variadic;
    fva_regs = ctx.va_regs;
    fslots = Array.of_list (List.rev ctx.slots);
    fframe_size = Machine.Memory.align_up ctx.frame_off 16;
    fblocks;
    fnregs = ctx.nregs;
  }

(* ------------------------------------------------------------------ *)
(* Globals                                                              *)
(* ------------------------------------------------------------------ *)

(** Evaluate a global-initializer scalar to a constant [gval]. *)
let rec gval_of env strings string_order (e : T.texpr) (width : int) : gval =
  match e.T.tdesc with
  | T.Cint v -> GInt (Int64.to_int v, width)
  | T.Cfloat f -> (
      match C.resolve env e.T.tty with
      | C.Tfloat C.FFloat -> GF32 f
      | _ -> GF64 f)
  | T.Cstr s ->
      let g =
        match Hashtbl.find_opt strings s with
        | Some g -> g
        | None ->
            let g = Printf.sprintf ".str.%d" (Hashtbl.length strings) in
            Hashtbl.replace strings s g;
            string_order := (g, s) :: !string_order;
            g
      in
      GAddr (g, 0)
  | T.Cfunc f -> GFuncAddr f
  | T.Addrof (T.Lvar v) when v.T.vkind = T.Vglobal -> GAddr (v.T.vname, 0)
  | T.Addrof (T.Lmem inner) -> gval_of env strings string_order inner 8
  | T.Cast inner -> (
      (* int-width change on a constant, or pointer cast *)
      match gval_of env strings string_order inner (max width 8) with
      | GInt (v, _) -> GInt (v, width)
      | g -> g)
  | T.Ptradd (p, i, scale) -> (
      match
        ( gval_of env strings string_order p 8,
          gval_of env strings string_order i 8 )
      with
      | GAddr (g, off), GInt (n, _) -> GAddr (g, off + (n * scale))
      | _ -> error "global initializer: non-constant pointer arithmetic")
  | T.Fieldaddr (p, off, _) -> (
      match gval_of env strings string_order p 8 with
      | GAddr (g, o) -> GAddr (g, o + off)
      | _ -> error "global initializer: non-constant field address")
  | T.Unop (Cminus.Ast.Uneg, a) -> (
      match gval_of env strings string_order a width with
      | GInt (v, w) -> GInt (-v, w)
      | GF64 f -> GF64 (-.f)
      | GF32 f -> GF32 (-.f)
      | _ -> error "global initializer: non-constant negation")
  | _ -> error "global initializer is not a constant expression"

let lower_global env strings string_order (g : T.tglobal) : global =
  let gsize = C.size_of env g.T.tgty in
  let galign = C.align_of env g.T.tgty in
  let ginit =
    match g.T.tginit with
    | None -> []
    | Some (T.Iscalar e) ->
        [ (0, gval_of env strings string_order e (C.size_of env e.T.tty)) ]
    | Some (T.Icomposite items) ->
        List.map
          (fun (off, e) ->
            (off, gval_of env strings string_order e (C.size_of env e.T.tty)))
          items
  in
  let gptr_offsets =
    List.filter_map
      (fun (off, v) ->
        match v with GAddr _ | GFuncAddr _ -> Some off | _ -> None)
      ginit
  in
  { gname = g.T.tgname; gsize; galign; ginit; gptr_offsets }

(* ------------------------------------------------------------------ *)
(* Program                                                              *)
(* ------------------------------------------------------------------ *)

let lower_program (p : T.tprogram) : modul =
  let env = p.T.tenv in
  let funs = Hashtbl.create 64 in
  let defined = Hashtbl.create 64 in
  List.iter
    (fun (f : T.tfundef) ->
      Hashtbl.replace funs f.T.tfname f.T.tfsig;
      Hashtbl.replace defined f.T.tfname ())
    p.T.tfuns;
  List.iter
    (fun (name, sg) ->
      if not (Hashtbl.mem funs name) then Hashtbl.replace funs name sg)
    p.T.textern_funs;
  let strings = Hashtbl.create 64 in
  let string_order = ref [] in
  let mfuncs = Hashtbl.create 64 in
  let mfunc_order =
    List.map
      (fun f ->
        let fn = lower_fundef ~env ~funs ~defined ~strings ~string_order f in
        Hashtbl.replace mfuncs fn.fname fn;
        fn.fname)
      p.T.tfuns
  in
  let var_globals =
    List.map (lower_global env strings string_order) p.T.tglobals
  in
  let str_globals =
    List.rev_map
      (fun (gname, contents) ->
        let n = String.length contents in
        let ginit =
          List.init n (fun i ->
              (i, GInt (Char.code contents.[i], 1)))
        in
        {
          gname;
          gsize = n + 1;
          galign = 1;
          ginit;
          gptr_offsets = [];
        })
      !string_order
  in
  let mexterns =
    List.filter_map
      (fun (name, sg) ->
        if Hashtbl.mem defined name then None
        else
          let cargs = List.map (ity_of env) sg.C.params in
          let cargs =
            if sg.C.variadic then cargs @ [ P; I64 ] else cargs
          in
          let crets =
            match C.resolve env sg.C.ret with
            | C.Tvoid -> []
            | t -> [ ity_of env t ]
          in
          Some (name, { cargs; crets; cvariadic = sg.C.variadic }))
      p.T.textern_funs
  in
  let m =
    {
      mfuncs;
      mglobals = var_globals @ str_globals;
      mfunc_order;
      mexterns;
    }
  in
  validate m;
  m

(** Full pipeline: C source -> typed AST -> IR. *)
let compile (src : string) : modul =
  lower_program (Cminus.Typecheck.program_of_string src)
