(* CFG analysis over [Ir.func]: successors/predecessors, reverse
   postorder, dominator tree, natural loops.

   The dominator tree uses the Cooper–Harvey–Kennedy iterative algorithm
   ("A Simple, Fast Dominance Algorithm"): process blocks in reverse
   postorder, intersect the candidate dominators of each block's
   processed predecessors by walking up the current tree, repeat to a
   fixpoint.  On the reducible CFGs our structured lowering produces it
   converges in two passes; irreducible graphs are still handled
   correctly, just in a few more iterations.

   Everything here is positional: blocks are indexed into
   [func.fblocks], the entry block is index 0, and unreachable blocks
   are excluded from the reverse postorder (their [rpo_pos] and [idom]
   are -1, and they belong to no loop).  Consumers such as the
   redundant-check elimination pass skip them. *)

open Ir

(** Branch targets of a terminator, in CFG order (duplicates possible
    for [TBr c t t]-style degenerate branches and shared switch cases). *)
let succs_of_term (t : terminator) : int list =
  match t with
  | TRet _ | TUnreachable -> []
  | TJmp t -> [ t ]
  | TBr (_, t1, t2) -> [ t1; t2 ]
  | TSwitch (_, cases, d) -> List.map snd cases @ [ d ]

type t = {
  nblocks : int;
  succs : int list array;  (** deduplicated successor lists *)
  preds : int list array;  (** deduplicated predecessor lists *)
  rpo : int array;  (** [rpo.(i)] = id of the i-th block in reverse
                        postorder; covers reachable blocks only *)
  rpo_pos : int array;  (** block id -> position in [rpo], or -1 if the
                            block is unreachable from the entry *)
  idom : int array;  (** immediate dominator; the entry maps to itself,
                         unreachable blocks map to -1 *)
}

let dedup (l : int list) : int list =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc)
       [] l)

let compute (f : func) : t =
  let n = Array.length f.fblocks in
  let succs =
    Array.init n (fun i -> dedup (succs_of_term f.fblocks.(i).term))
  in
  let preds = Array.make n [] in
  Array.iteri
    (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  (* Depth-first postorder from the entry; reversed = RPO. *)
  let visited = Array.make n false in
  let post = ref [] in
  (* Explicit stack: blocks can chain deeply (long straight-line
     functions lower to many blocks) and we must not overflow. *)
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      post := b :: !post
    end
  in
  if n > 0 then dfs 0;
  let rpo = Array.of_list !post in
  let rpo_pos = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_pos.(b) <- i) rpo;
  (* Cooper–Harvey–Kennedy. *)
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let rec intersect b1 b2 =
    if b1 = b2 then b1
    else if rpo_pos.(b1) > rpo_pos.(b2) then intersect idom.(b1) b2
    else intersect b1 idom.(b2)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 then begin
          let new_idom =
            List.fold_left
              (fun acc p ->
                if idom.(p) = -1 then acc
                else match acc with
                  | None -> Some p
                  | Some a -> Some (intersect p a))
              None preds.(b)
          in
          match new_idom with
          | Some ni when idom.(b) <> ni ->
              idom.(b) <- ni;
              changed := true
          | _ -> ()
        end)
      rpo
  done;
  { nblocks = n; succs; preds; rpo; rpo_pos; idom }

let reachable (d : t) (b : int) : bool = d.rpo_pos.(b) >= 0

(** [dominates d a b]: every path from the entry to [b] passes through
    [a] (reflexive).  False if either block is unreachable. *)
let dominates (d : t) (a : int) (b : int) : bool =
  if not (reachable d a && reachable d b) then false
  else begin
    (* Walk b's dominator chain upward; a dominator always has a
       strictly smaller RPO position, so stop once we pass a's. *)
    let rec up x = x = a || (x <> 0 && d.rpo_pos.(x) > d.rpo_pos.(a)
                             && up d.idom.(x))
    in
    up b
  end

(* ------------------------------------------------------------------ *)
(* Natural loops                                                        *)
(* ------------------------------------------------------------------ *)

type loop = {
  header : int;
  body : bool array;  (** per-block membership, header included *)
  latches : int list;  (** in-loop sources of back edges to the header *)
  exits : int list;  (** in-loop blocks with a successor outside *)
}

let loop_size (l : loop) =
  Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 l.body

let loop_mem (l : loop) (b : int) = l.body.(b)

(** Natural loops of the CFG: one loop per header, merging the bodies of
    all back edges that share that header, sorted smallest-body-first so
    inner loops come before the loops that enclose them. *)
let natural_loops (d : t) : loop list =
  let back_edges =
    (* u -> v is a back edge when v dominates u. *)
    Array.to_list d.rpo
    |> List.concat_map (fun u ->
           List.filter_map
             (fun v -> if dominates d v u then Some (u, v) else None)
             d.succs.(u))
  in
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (u, v) ->
      let ls = try Hashtbl.find by_header v with Not_found -> [] in
      Hashtbl.replace by_header v (u :: ls))
    back_edges;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        let body = Array.make d.nblocks false in
        body.(header) <- true;
        (* Blocks that reach a latch without passing through the header:
           walk predecessors backwards from each latch. *)
        let rec add b =
          if not body.(b) then begin
            body.(b) <- true;
            List.iter add d.preds.(b)
          end
        in
        List.iter add latches;
        let exits = ref [] in
        Array.iteri
          (fun b inside ->
            if inside
               && List.exists (fun s -> not body.(s)) d.succs.(b)
            then exits := b :: !exits)
          body;
        { header; body; latches; exits = List.rev !exits } :: acc)
      by_header []
  in
  List.sort (fun a b -> compare (loop_size a) (loop_size b)) loops
