(* Human-readable IR dump, for debugging and golden tests. *)

open Ir

let str_ity = function
  | I8 -> "i8" | U8 -> "u8" | I16 -> "i16" | U16 -> "u16"
  | I32 -> "i32" | U32 -> "u32" | I64 -> "i64" | U64 -> "u64"
  | F32 -> "f32" | F64 -> "f64" | P -> "ptr"

let str_op = function
  | Reg r -> Printf.sprintf "%%r%d" r
  | ImmI i -> string_of_int i
  | ImmF f -> Printf.sprintf "%g" f
  | Glob g -> "@" ^ g
  | GlobEnd g -> "@end." ^ g
  | Func f -> "@fn." ^ f

let str_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let str_cmpop = function
  | Ceq -> "eq" | Cne -> "ne" | Clt -> "lt" | Cle -> "le" | Cgt -> "gt"
  | Cge -> "ge"

let str_inst = function
  | Mov (r, t, o) ->
      Printf.sprintf "%%r%d = mov.%s %s" r (str_ity t) (str_op o)
  | Bin (r, op, t, a, b) ->
      Printf.sprintf "%%r%d = %s.%s %s, %s" r (str_binop op) (str_ity t)
        (str_op a) (str_op b)
  | Cmp (r, op, t, a, b) ->
      Printf.sprintf "%%r%d = cmp.%s.%s %s, %s" r (str_cmpop op) (str_ity t)
        (str_op a) (str_op b)
  | Cast (r, to_, from_, o) ->
      Printf.sprintf "%%r%d = cast.%s<-%s %s" r (str_ity to_) (str_ity from_)
        (str_op o)
  | Load (r, t, a) ->
      Printf.sprintf "%%r%d = load.%s [%s]" r (str_ity t) (str_op a)
  | Store (t, a, v) ->
      Printf.sprintf "store.%s [%s], %s" (str_ity t) (str_op a) (str_op v)
  | Gep (r, b, o, shrink) ->
      Printf.sprintf "%%r%d = gep %s + %s%s" r (str_op b) (str_op o)
        (match shrink with
        | None -> ""
        | Some s -> Printf.sprintf " !shrink(%d)" s)
  | Slotaddr (r, s) -> Printf.sprintf "%%r%d = slotaddr %d" r s
  | Call { rets; callee; args; _ } ->
      let rets_s =
        match rets with
        | [] -> ""
        | rs ->
            String.concat ", " (List.map (Printf.sprintf "%%r%d") rs) ^ " = "
      in
      Printf.sprintf "%scall %s(%s)" rets_s (str_op callee)
        (String.concat ", " (List.map str_op args))
  | SetBoundMark (a, n) ->
      Printf.sprintf "setbound.mark [%s], %s" (str_op a) (str_op n)
  | Check (p, b, e, sz, site) ->
      Printf.sprintf "check %s in [%s, %s) size %d !site(%d)" (str_op p)
        (str_op b) (str_op e) sz site
  | CheckFptr (p, b, e, h, site) ->
      Printf.sprintf "check.fptr %s meta [%s, %s)%s !site(%d)" (str_op p)
        (str_op b) (str_op e)
        (match h with None -> "" | Some h -> Printf.sprintf " !sig(%x)" h)
        site
  | MetaLoad (rb, re, a, site) ->
      Printf.sprintf "%%r%d, %%r%d = meta.load [%s] !site(%d)" rb re (str_op a)
        site
  | MetaStore (a, b, e, site) ->
      Printf.sprintf "meta.store [%s] <- (%s, %s) !site(%d)" (str_op a)
        (str_op b) (str_op e) site
  | CheckSpan sp ->
      Printf.sprintf
        "check.span %s count %s stride %d width %d in [%s, %s) !site(%d)%s"
        (str_op sp.sp_first) (str_op sp.sp_count) sp.sp_stride sp.sp_width
        (str_op sp.sp_base) (str_op sp.sp_bound) sp.sp_site
        (if Array.length sp.sp_sites = 0 then ""
         else
           Printf.sprintf " !sites(%s)"
             (String.concat ","
                (Array.to_list (Array.map string_of_int sp.sp_sites))))

let str_term = function
  | TRet ops -> "ret " ^ String.concat ", " (List.map str_op ops)
  | TJmp t -> Printf.sprintf "jmp B%d" t
  | TBr (c, a, b) -> Printf.sprintf "br %s ? B%d : B%d" (str_op c) a b
  | TSwitch (v, cases, d) ->
      Printf.sprintf "switch %s [%s] default B%d" (str_op v)
        (String.concat "; "
           (List.map (fun (c, t) -> Printf.sprintf "%d->B%d" c t) cases))
        d
  | TUnreachable -> "unreachable"

let pp_func buf (f : func) =
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s) -> (%s)%s  frame=%d regs=%d\n" f.fname
       (String.concat ", "
          (List.map
             (fun (r, t) -> Printf.sprintf "%%r%d:%s" r (str_ity t))
             f.fparams))
       (String.concat ", " (List.map str_ity f.frets))
       (if f.fvariadic then " variadic" else "")
       f.fframe_size f.fnregs);
  Array.iteri
    (fun i sl ->
      Buffer.add_string buf
        (Printf.sprintf "  slot %d: %s off=%d size=%d ptrs=[%s]\n" i
           sl.sl_name sl.sl_offset sl.sl_size
           (String.concat "," (List.map string_of_int sl.sl_ptr_offsets))))
    f.fslots;
  Array.iteri
    (fun i b ->
      Buffer.add_string buf (Printf.sprintf "B%d:\n" i);
      List.iter
        (fun inst ->
          Buffer.add_string buf ("  " ^ str_inst inst ^ "\n"))
        b.insts;
      Buffer.add_string buf ("  " ^ str_term b.term ^ "\n"))
    f.fblocks

let dump_func f =
  let buf = Buffer.create 1024 in
  pp_func buf f;
  Buffer.contents buf

let dump_module (m : modul) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "global %s size=%d align=%d ptrs=[%s]\n" g.gname
           g.gsize g.galign
           (String.concat "," (List.map string_of_int g.gptr_offsets))))
    m.mglobals;
  iter_funcs m (fun f -> pp_func buf f);
  Buffer.contents buf
