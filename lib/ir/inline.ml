(* A simple function inliner.

   The paper applies SoftBound *after* LLVM's full optimization pipeline
   (section 6.1), so small hot callees are already inlined and their
   pointer arguments never cross a call boundary (no metadata arguments,
   no argument-metadata materialization).  This pass reproduces that
   instrumentation point: it inlines small, non-recursive, slot-free
   functions whose address is never taken, before the SoftBound pass
   runs.

   Correctness notes:
   - callee virtual registers are renumbered by a fresh offset per site;
   - callee blocks are appended to the caller, with branch targets
     shifted; the call's block is split, its tail becoming a
     continuation block;
   - each [TRet] becomes moves into the call's result registers plus a
     jump to the continuation. *)

open Ir

let max_callee_insts = 28
let max_callee_blocks = 4
let max_caller_growth = 400 (* instructions added per caller, at most *)

let func_insts (f : func) =
  Array.fold_left (fun a b -> a + List.length b.insts) 0 f.fblocks

(** Functions whose address is taken as a value (callable indirectly):
    their bodies must stay. *)
let address_taken (m : modul) : (string, unit) Hashtbl.t =
  let taken = Hashtbl.create 16 in
  let op = function Func f -> Hashtbl.replace taken f () | _ -> () in
  iter_funcs m (fun f ->
      Array.iter
        (fun b ->
          List.iter
            (fun inst ->
              match inst with
              | Call { callee; args; _ } ->
                  (* the callee of a direct call is not a value use *)
                  (match callee with Func _ -> () | o -> op o);
                  List.iter op args
              | i -> ignore (map_inst_operands (fun o -> op o; o) i))
            b.insts;
          ignore (map_term_operands (fun o -> op o; o) b.term))
        f.fblocks);
  taken

let calls_self (f : func) =
  Array.exists
    (fun b ->
      List.exists
        (function
          | Call { callee = Func g; _ } -> g = f.fname
          | _ -> false)
        b.insts)
    f.fblocks

let inlinable (taken : (string, unit) Hashtbl.t) (f : func) =
  (not f.fvariadic)
  && Array.length f.fslots = 0
  && Array.length f.fblocks <= max_callee_blocks
  && func_insts f <= max_callee_insts
  && (not (Hashtbl.mem taken f.fname))
  && (not (calls_self f))
  && f.fname <> "main"

(** Inline exactly one eligible call site; [None] if there is none. *)
let inline_one (m : modul) (taken : (string, unit) Hashtbl.t) (caller : func)
    : func option =
  let site = ref None in
  Array.iteri
    (fun bi b ->
      if !site = None then
        List.iteri
          (fun ii inst ->
            if !site = None then
              match inst with
              | Call { callee = Func g; args; rets; _ }
                when g <> caller.fname -> (
                  match find_func m g with
                  | Some callee
                    when inlinable taken callee
                         && List.length args = List.length callee.fparams ->
                      site := Some (bi, ii, callee, args, rets)
                  | _ -> ())
              | _ -> ())
          b.insts)
    caller.fblocks;
  match !site with
  | None -> None
  | Some (bi, ii, callee, args, rets) ->
      let nb = Array.length caller.fblocks in
      let callee_base = nb in
      let cont_id = nb + Array.length callee.fblocks in
      let off = caller.fnregs in
      let rn r = r + off in
      let rn_op = function Reg r -> Reg (rn r) | o -> o in
      let rn_inst i =
        let i = map_inst_operands rn_op i in
        match i with
        | Mov (r, t, o) -> Mov (rn r, t, o)
        | Bin (r, op, t, a, b) -> Bin (rn r, op, t, a, b)
        | Cmp (r, op, t, a, b) -> Cmp (rn r, op, t, a, b)
        | Cast (r, t1, t2, o) -> Cast (rn r, t1, t2, o)
        | Load (r, t, a) -> Load (rn r, t, a)
        | Gep (r, a, o, s) -> Gep (rn r, a, o, s)
        | Slotaddr (r, s) -> Slotaddr (rn r, s)
        | MetaLoad (r1, r2, a, site) -> MetaLoad (rn r1, rn r2, a, site)
        | Call c -> Call { c with rets = List.map rn c.rets }
        | ( Store _ | SetBoundMark _ | Check _ | CheckFptr _ | MetaStore _
          | CheckSpan _ ) as i ->
            i
      in
      let b = caller.fblocks.(bi) in
      let pre = List.filteri (fun i _ -> i < ii) b.insts in
      let post = List.filteri (fun i _ -> i > ii) b.insts in
      let param_movs =
        List.map2 (fun (p, t) a -> Mov (rn p, t, a)) callee.fparams args
      in
      let head = { insts = pre @ param_movs; term = TJmp callee_base } in
      let shift_term = function
        | TJmp t -> TJmp (t + callee_base)
        | TBr (c, t1, t2) -> TBr (rn_op c, t1 + callee_base, t2 + callee_base)
        | TSwitch (v, cases, d) ->
            TSwitch
              ( rn_op v,
                List.map (fun (c, t) -> (c, t + callee_base)) cases,
                d + callee_base )
        | TUnreachable -> TUnreachable
        | TRet _ -> assert false
      in
      let callee_blocks =
        Array.map
          (fun cb ->
            let insts = List.map rn_inst cb.insts in
            match cb.term with
            | TRet ops ->
                let movs =
                  List.concat
                    (List.mapi
                       (fun i r ->
                         match List.nth_opt ops i with
                         | Some o ->
                             let t =
                               match List.nth_opt callee.frets i with
                               | Some t -> t
                               | None -> I64
                             in
                             [ Mov (r, t, rn_op o) ]
                         | None -> [])
                       rets)
                in
                { insts = insts @ movs; term = TJmp cont_id }
            | t -> { insts; term = shift_term t })
          callee.fblocks
      in
      let cont = { insts = post; term = b.term } in
      let fblocks =
        Array.concat
          [
            Array.mapi (fun i ob -> if i = bi then head else ob) caller.fblocks;
            callee_blocks;
            [| cont |];
          ]
      in
      Some { caller with fblocks; fnregs = caller.fnregs + callee.fnregs }

(** Inline call sites in [f] until none are eligible or the growth
    budget is exhausted. *)
let inline_func (m : modul) taken (f : func) : func =
  let start = func_insts f in
  let rec bounded f =
    if func_insts f - start > max_caller_growth then f
    else
      match inline_one m taken f with None -> f | Some f' -> bounded f'
  in
  bounded f

(** Inline small callees throughout the module (bottom-up would converge
    faster; a bounded fixpoint is simpler and the budgets keep it small). *)
let run (m : modul) : modul =
  let taken = address_taken m in
  let m' = map_funcs m (fun f -> inline_func m taken f) in
  validate m';
  m'
