(* Typed abstract syntax, produced by {!Typecheck} and consumed by IR
   lowering.

   Compared to the raw AST, the typed AST:
   - annotates every expression with its C type,
   - renames locals to unique names (block scoping resolved),
   - distinguishes pointer arithmetic ([Ptradd]) from integer arithmetic
     (so the SoftBound pass sees pointer provenance explicitly),
   - resolves struct field accesses to byte offsets,
   - folds [sizeof] and enum constants,
   - records which locals have their address taken (register promotion:
     unaddressed scalar locals never touch simulated memory, matching the
     paper's post-optimization instrumentation point). *)

type unop = Ast.unop
type binop = Ast.binop

type var_kind = Vlocal | Vparam | Vglobal
[@@deriving show { with_path = false }, eq]

type var_ref = { vname : string; vty : Ctypes.ty; vkind : var_kind }

type texpr = { tdesc : tdesc; tty : Ctypes.ty }

and tdesc =
  | Cint of int64  (** integer constant of type [tty] *)
  | Cfloat of float
  | Cstr of string  (** string literal; [tty] is [char*] (decayed) *)
  | Cfunc of string  (** function designator, decayed to function pointer *)
  | Lval of lval  (** read an lvalue *)
  | Addrof of lval
  | Unop of unop * texpr
  | Binop of binop * texpr * texpr
      (** arithmetic/bitwise/comparison on arithmetic operands, or
          pointer equality/relational comparison *)
  | Ptradd of texpr * texpr * int
      (** [Ptradd (p, i, scale)]: p + i*scale bytes; [tty] is the pointer
          type. Covers array indexing and pointer arithmetic. *)
  | Fieldaddr of texpr * int * int
      (** [Fieldaddr (p, offset, field_size)]: address of a struct/union
          field.  Kept distinct from [Ptradd] because SoftBound *shrinks*
          the bounds to the field here (paper section 3.1, "Shrinking
          Pointer Bounds") — this is what defeats sub-object overflows. *)
  | Ptrdiff of texpr * texpr * int  (** (p - q) / scale, type long *)
  | Cond of texpr * texpr * texpr
  | Cast of texpr  (** conversion to [tty] *)
  | Call of callee * texpr list
  | Assign of lval * texpr  (** value = stored value *)
  | Assignop of binop * lval * texpr * Ctypes.ty
      (** [lv op= e]; the extra type is the type at which the operation
          is performed (after usual conversions) *)
  | Incrdecr of bool * bool * lval * int
      (** (is_incr, is_prefix, lv, scale): ++/-- with pointer scaling *)
  | Comma of texpr * texpr
  | Va_start of lval  (** bind the va cursor of the enclosing function *)
  | Va_arg of lval * Ctypes.ty  (** fetch next vararg, advancing the cursor *)
  | Setbound of lval * texpr
      (** [setbound(p, n)]: programmer-directed bounds for the pointer
          variable [p] (paper sections 3.1 and 5.2); a no-op when the
          program runs uninstrumented *)

and lval =
  | Lvar of var_ref  (** named variable *)
  | Lmem of texpr  (** *[addr-expr]; the lval's type is the pointee type *)

and callee = { cfun : ccallee; csig : Ctypes.fsig }
and ccallee = Cdirect of string | Cindirect of texpr

type tstmt =
  | Texpr of texpr
  | Tif of texpr * tstmt list * tstmt list
  | Twhile of texpr * tstmt list
  | Tdowhile of tstmt list * texpr
  | Tfor of tstmt list * texpr option * tstmt list * tstmt list
  | Treturn of texpr option
  | Tbreak
  | Tcontinue
  | Tblock of tstmt list
  | Tswitch of texpr * (int64 list option * tstmt list) list
      (** cases in source order; [None] labels the default case *)
  | Tlocal_init of var_ref * init
      (** initialize a (fresh) local; emitted where the decl appeared *)

and init = Iscalar of texpr | Icomposite of (int * texpr) list
      (** composite initializer flattened to (byte offset, scalar) pairs;
          remaining bytes are zeroed *)

type local = { lname : string; lty : Ctypes.ty; laddressed : bool }

type tfundef = {
  tfname : string;
  tfsig : Ctypes.fsig;
  tfparams : (string * Ctypes.ty) list;
  tfaddressed_params : string list;
      (** parameters whose address is taken: they need a frame slot *)
  tflocals : local list;
  tfbody : tstmt list;
}

type tglobal = {
  tgname : string;
  tgty : Ctypes.ty;
  tginit : init option;
}

type tprogram = {
  tfuns : tfundef list;
  tglobals : tglobal list;
  textern_funs : (string * Ctypes.fsig) list;
      (** declared but not defined here: libc builtins or other units *)
  tenv : Ctypes.env;
}

(** Type of an lvalue. *)
let lval_ty = function
  | Lvar v -> v.vty
  | Lmem e -> (
      match e.tty with
      | Ctypes.Tptr t -> t
      | _ -> invalid_arg "lval_ty: Lmem with non-pointer address")
