(* Typechecker / elaborator: Ast -> Tast.

   Responsibilities (see Tast for the full list): type annotation, implicit
   conversion insertion, lvalue normalization, unique renaming of locals,
   address-taken analysis, initializer flattening, constant folding of
   sizeof / enum constants / case labels. *)

open Ast
module T = Tast

exception Error of string * loc

let err loc fmt = Format.kasprintf (fun s -> raise (Error (s, loc))) fmt

type fun_info = { fi_sig : Ctypes.fsig; mutable fi_defined : bool }

type ctx = {
  env : Ctypes.env;
  funs : (string, fun_info) Hashtbl.t;
  globals : (string, Ctypes.ty) Hashtbl.t;
  mutable scopes : (string, T.var_ref) Hashtbl.t list;
  addressed : (string, unit) Hashtbl.t;  (* unique local names *)
  mutable locals_acc : (string * Ctypes.ty) list;  (* reversed *)
  mutable fresh : int;
  mutable cur_ret : Ctypes.ty;
  mutable cur_variadic : bool;
  mutable cur_fname : string;
  mutable static_acc : T.tglobal list;
      (** globals synthesized from [static] locals, in reverse order *)
}

let resolve ctx t = Ctypes.resolve ctx.env t
let size_of ctx t = Ctypes.size_of ctx.env t

let push_scope ctx = ctx.scopes <- Hashtbl.create 8 :: ctx.scopes
let pop_scope ctx = ctx.scopes <- List.tl ctx.scopes

let lookup_var ctx name =
  let rec go = function
    | [] -> None
    | s :: rest -> (
        match Hashtbl.find_opt s name with Some v -> Some v | None -> go rest)
  in
  go ctx.scopes

let declare_local ctx name ty =
  ctx.fresh <- ctx.fresh + 1;
  let uname = Printf.sprintf "%s$%d" name ctx.fresh in
  let vr = { T.vname = uname; vty = ty; vkind = T.Vlocal } in
  (match ctx.scopes with
  | s :: _ -> Hashtbl.replace s name vr
  | [] -> invalid_arg "declare_local: no scope");
  ctx.locals_acc <- (uname, ty) :: ctx.locals_acc;
  vr

let declare_param ctx name ty =
  let vr = { T.vname = name; vty = ty; vkind = T.Vparam } in
  (match ctx.scopes with
  | s :: _ -> Hashtbl.replace s name vr
  | [] -> invalid_arg "declare_param: no scope");
  vr

let mark_addressed ctx (lv : T.lval) =
  match lv with
  | T.Lvar v when v.vkind <> T.Vglobal ->
      Hashtbl.replace ctx.addressed v.vname ()
  | _ -> ()

let mk d t : T.texpr = { T.tdesc = d; tty = t }

let is_null_const (e : T.texpr) =
  match e.T.tdesc with T.Cint 0L -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Conversions                                                          *)
(* ------------------------------------------------------------------ *)

let rec convert ctx loc (e : T.texpr) (target : Ctypes.ty) : T.texpr =
  let t1 = resolve ctx e.T.tty and t2 = resolve ctx target in
  if Ctypes.equal_ty t1 t2 then e
  else
    match (t1, t2) with
    | (Ctypes.Tint _ | Ctypes.Tfloat _), (Ctypes.Tint _ | Ctypes.Tfloat _) ->
        mk (T.Cast e) target
    | Ctypes.Tptr _, Ctypes.Tptr _ -> mk (T.Cast e) target
    | Ctypes.Tint _, Ctypes.Tptr _ ->
        (* 0 -> null pointer; other ints allowed (SoftBound gives them
           NULL bounds, section 5.2 "Creating pointers from integers") *)
        mk (T.Cast e) target
    | Ctypes.Tptr _, Ctypes.Tint _ -> mk (T.Cast e) target
    | Ctypes.Tstruct a, Ctypes.Tstruct b when a = b -> e
    | Ctypes.Tunion a, Ctypes.Tunion b when a = b -> e
    | Ctypes.Tvoid, Ctypes.Tvoid -> e
    | _, Ctypes.Tvoid -> mk (T.Cast e) Ctypes.Tvoid
    | _ ->
        err loc "cannot convert %s to %s"
          (Ctypes.string_of_ty e.T.tty)
          (Ctypes.string_of_ty target)

and promote_vararg ctx loc (e : T.texpr) : T.texpr =
  match resolve ctx e.T.tty with
  | Ctypes.Tfloat Ctypes.FFloat -> convert ctx loc e (Ctypes.Tfloat FDouble)
  | Ctypes.Tint k when Ctypes.ikind_size k < 4 ->
      convert ctx loc e (Ctypes.Tint (if Ctypes.ikind_signed k then IInt else IUInt))
  | _ -> e

(* ------------------------------------------------------------------ *)
(* Expression checking                                                  *)
(* ------------------------------------------------------------------ *)

(** Read the value of an lvalue, with array/function decay. *)
let rvalue_of_lval ctx (lv : T.lval) : T.texpr =
  let ty = T.lval_ty lv in
  match resolve ctx ty with
  | Ctypes.Tarray (elem, _) ->
      mark_addressed ctx lv;
      mk (T.Addrof lv) (Ctypes.Tptr elem)
  | _ -> mk (T.Lval lv) ty

let rec check_expr ctx (e : expr) : T.texpr =
  let loc = e.eloc in
  match e.edesc with
  | Eintlit (v, k) -> mk (T.Cint v) (Ctypes.Tint k)
  | Efloatlit (v, k) -> mk (T.Cfloat v) (Ctypes.Tfloat k)
  | Echarlit c -> mk (T.Cint (Int64.of_int (Char.code c))) (Ctypes.Tint IInt)
  | Estrlit s -> mk (T.Cstr s) (Ctypes.Tptr (Ctypes.Tint IChar))
  | Eident "NULL" when lookup_var ctx "NULL" = None ->
      mk (T.Cint 0L) (Ctypes.Tptr Ctypes.Tvoid)
  | Eident name -> (
      match lookup_var ctx name with
      | Some vr -> rvalue_of_lval ctx (T.Lvar vr)
      | None -> (
          match Hashtbl.find_opt ctx.globals name with
          | Some ty ->
              rvalue_of_lval ctx
                (T.Lvar { T.vname = name; vty = ty; vkind = T.Vglobal })
          | None -> (
              match Hashtbl.find_opt ctx.env.Ctypes.enums name with
              | Some v -> mk (T.Cint v) (Ctypes.Tint IInt)
              | None -> (
                  match Hashtbl.find_opt ctx.funs name with
                  | Some fi ->
                      mk (T.Cfunc name) (Ctypes.Tptr (Ctypes.Tfunc fi.fi_sig))
                  | None -> err loc "undefined identifier %s" name))))
  | Eunop (Uneg, a) ->
      let a' = check_expr ctx a in
      let ty = arith_type ctx loc a' in
      let ty =
        match resolve ctx ty with
        | Ctypes.Tint k when Ctypes.ikind_size k < 4 -> Ctypes.Tint IInt
        | t -> t
      in
      mk (T.Unop (Uneg, convert ctx loc a' ty)) ty
  | Eunop (Unot, a) ->
      let a' = check_scalar ctx a in
      mk (T.Unop (Unot, a')) (Ctypes.Tint IInt)
  | Eunop (Ubnot, a) ->
      let a' = check_expr ctx a in
      let ty =
        match resolve ctx a'.T.tty with
        | Ctypes.Tint k when Ctypes.ikind_size k < 4 -> Ctypes.Tint IInt
        | Ctypes.Tint _ -> a'.T.tty
        | _ -> err loc "~ requires an integer operand"
      in
      mk (T.Unop (Ubnot, convert ctx loc a' ty)) ty
  | Ebinop (op, a, b) -> check_binop ctx loc op a b
  | Eassign (None, lhs, rhs) -> (
      let lv = check_lval ctx lhs in
      let lty = T.lval_ty lv in
      match resolve ctx lty with
      | Ctypes.Tstruct _ | Ctypes.Tunion _ ->
          let rv = check_expr ctx rhs in
          if not (Ctypes.compatible ctx.env lty rv.T.tty) then
            err loc "struct assignment with mismatched types";
          mk (T.Assign (lv, rv)) lty
      | Ctypes.Tarray _ -> err loc "cannot assign to an array"
      | _ ->
          let rv = check_expr ctx rhs in
          mk (T.Assign (lv, convert ctx loc rv lty)) lty)
  | Eassign (Some op, lhs, rhs) ->
      let lv = check_lval ctx lhs in
      let lty = T.lval_ty lv in
      let rv = check_expr ctx rhs in
      (match (resolve ctx lty, op) with
      | Ctypes.Tptr _, (Badd | Bsub) ->
          if not (Ctypes.is_integer ctx.env rv.T.tty) then
            err loc "pointer %s= requires integer rhs"
              (if op = Badd then "+" else "-");
          mk (T.Assignop (op, lv, convert ctx loc rv (Ctypes.Tint ILong), lty)) lty
      | Ctypes.Tptr _, _ -> err loc "invalid compound assignment on pointer"
      | _ ->
          let opty =
            match op with
            | Bshl | Bshr -> (
                match resolve ctx lty with
                | Ctypes.Tint k when Ctypes.ikind_size k < 4 -> Ctypes.Tint IInt
                | Ctypes.Tint _ -> lty
                | _ -> err loc "shift on non-integer")
            | _ -> Ctypes.common_arith ctx.env lty rv.T.tty
          in
          mk (T.Assignop (op, lv, convert ctx loc rv opty, opty)) lty)
  | Econd (c, a, b) -> (
      let c' = check_scalar ctx c in
      let a' = check_expr ctx a in
      let b' = check_expr ctx b in
      let ta = resolve ctx a'.T.tty and tb = resolve ctx b'.T.tty in
      match (ta, tb) with
      | (Ctypes.Tint _ | Ctypes.Tfloat _), (Ctypes.Tint _ | Ctypes.Tfloat _) ->
          let ty = Ctypes.common_arith ctx.env ta tb in
          mk (T.Cond (c', convert ctx loc a' ty, convert ctx loc b' ty)) ty
      | Ctypes.Tptr _, _ when is_null_const b' ->
          mk (T.Cond (c', a', convert ctx loc b' a'.T.tty)) a'.T.tty
      | _, Ctypes.Tptr _ when is_null_const a' ->
          mk (T.Cond (c', convert ctx loc a' b'.T.tty, b')) b'.T.tty
      | Ctypes.Tptr _, Ctypes.Tptr _ ->
          mk (T.Cond (c', a', convert ctx loc b' a'.T.tty)) a'.T.tty
      | Ctypes.Tvoid, Ctypes.Tvoid -> mk (T.Cond (c', a', b')) Ctypes.Tvoid
      | _ -> err loc "incompatible branches of ?:")
  | Ecast (ty, a) -> (
      let a' = check_expr ctx a in
      let t1 = resolve ctx a'.T.tty and t2 = resolve ctx ty in
      match (t1, t2) with
      | _, Ctypes.Tvoid -> mk (T.Cast a') ty
      | (Ctypes.Tint _ | Ctypes.Tfloat _ | Ctypes.Tptr _),
        (Ctypes.Tint _ | Ctypes.Tfloat _ | Ctypes.Tptr _) ->
          if Ctypes.equal_ty t1 t2 then a' else mk (T.Cast a') ty
      | _ -> err loc "invalid cast to %s" (Ctypes.string_of_ty ty))
  | Esizeof_ty ty ->
      mk (T.Cint (Int64.of_int (size_of ctx ty))) (Ctypes.Tint IULong)
  | Esizeof_e a ->
      (* sizeof does not evaluate its operand; we only need its type.  A
         sub-check in a throwaway context copy would be cleaner but the
         checker has no side effects beyond fresh names, so just check. *)
      let saved = ctx.locals_acc in
      let a' = check_sizeof_operand ctx a in
      ctx.locals_acc <- saved;
      mk (T.Cint (Int64.of_int (size_of ctx a'))) (Ctypes.Tint IULong)
  | Eaddrof a -> (
      match a.edesc with
      | Eident f
        when lookup_var ctx f = None
             && not (Hashtbl.mem ctx.globals f)
             && Hashtbl.mem ctx.funs f ->
          let fi = Hashtbl.find ctx.funs f in
          mk (T.Cfunc f) (Ctypes.Tptr (Ctypes.Tfunc fi.fi_sig))
      | _ ->
          let lv = check_lval ctx a in
          mark_addressed ctx lv;
          mk (T.Addrof lv) (Ctypes.Tptr (T.lval_ty lv)))
  | Ederef a -> (
      let a' = check_expr ctx a in
      match resolve ctx a'.T.tty with
      | Ctypes.Tptr p -> (
          match resolve ctx p with
          | Ctypes.Tfunc _ -> a' (* *f on a function pointer is a no-op *)
          | _ -> rvalue_of_lval ctx (T.Lmem a'))
      | _ -> err loc "dereference of non-pointer (%s)"
               (Ctypes.string_of_ty a'.T.tty))
  | Eindex (a, i) -> rvalue_of_lval ctx (index_lval ctx loc a i)
  | Efield (a, f) -> rvalue_of_lval ctx (field_lval ctx loc a f)
  | Earrow (a, f) -> rvalue_of_lval ctx (arrow_lval ctx loc a f)
  | Ecall (f, args) -> check_call ctx loc f args
  | Eincrdecr (is_incr, is_pre, a) -> (
      let lv = check_lval ctx a in
      let lty = T.lval_ty lv in
      match resolve ctx lty with
      | Ctypes.Tptr p ->
          mk (T.Incrdecr (is_incr, is_pre, lv, size_of ctx p)) lty
      | Ctypes.Tint _ | Ctypes.Tfloat _ ->
          mk (T.Incrdecr (is_incr, is_pre, lv, 1)) lty
      | _ -> err loc "++/-- requires scalar operand")
  | Ecomma (a, b) ->
      let a' = check_expr ctx a in
      let b' = check_expr ctx b in
      mk (T.Comma (a', b')) b'.T.tty

(** Type of a sizeof operand (no code generated). *)
and check_sizeof_operand ctx (e : expr) : Ctypes.ty =
  match e.edesc with
  | Eident name -> (
      match lookup_var ctx name with
      | Some vr -> vr.T.vty
      | None -> (
          match Hashtbl.find_opt ctx.globals name with
          | Some ty -> ty
          | None -> (check_expr ctx e).T.tty))
  | Ederef a -> (
      let t = check_sizeof_operand ctx a in
      match resolve ctx t with
      | Ctypes.Tptr p -> p
      | Ctypes.Tarray (p, _) -> p
      | _ -> err e.eloc "dereference of non-pointer in sizeof")
  | Eindex (a, _) -> (
      let t = check_sizeof_operand ctx a in
      match resolve ctx t with
      | Ctypes.Tptr p | Ctypes.Tarray (p, _) -> p
      | _ -> err e.eloc "index of non-array in sizeof")
  | Efield (a, f) -> (
      let t = check_sizeof_operand ctx a in
      match Ctypes.fields_of ctx.env t with
      | Some comp -> (Ctypes.field_of_comp comp f).Ctypes.fty
      | None -> err e.eloc "field access on non-struct in sizeof")
  | Earrow (a, f) -> (
      let t = check_sizeof_operand ctx a in
      match resolve ctx t with
      | Ctypes.Tptr p -> (
          match Ctypes.fields_of ctx.env p with
          | Some comp -> (Ctypes.field_of_comp comp f).Ctypes.fty
          | None -> err e.eloc "-> on non-struct-pointer in sizeof")
      | _ -> err e.eloc "-> on non-pointer in sizeof")
  | _ -> (check_expr ctx e).T.tty

and check_scalar ctx (e : expr) : T.texpr =
  let e' = check_expr ctx e in
  if Ctypes.is_scalar ctx.env e'.T.tty then e'
  else err e.eloc "expected a scalar value, got %s"
         (Ctypes.string_of_ty e'.T.tty)

and arith_type ctx loc (e : T.texpr) : Ctypes.ty =
  if Ctypes.is_arith ctx.env e.T.tty then e.T.tty
  else err loc "expected an arithmetic value, got %s"
         (Ctypes.string_of_ty e.T.tty)

and check_binop ctx loc op a b : T.texpr =
  let a' = check_expr ctx a in
  let b' = check_expr ctx b in
  let ta = resolve ctx a'.T.tty and tb = resolve ctx b'.T.tty in
  let intres = Ctypes.Tint IInt in
  match op with
  | Bland | Blor ->
      if not (Ctypes.is_scalar ctx.env ta && Ctypes.is_scalar ctx.env tb) then
        err loc "&& / || require scalar operands";
      mk (T.Binop (op, a', b')) intres
  | Beq | Bne | Blt | Bgt | Ble | Bge -> (
      match (ta, tb) with
      | Ctypes.Tptr _, Ctypes.Tptr _ -> mk (T.Binop (op, a', b')) intres
      | Ctypes.Tptr _, Ctypes.Tint _ ->
          mk (T.Binop (op, a', convert ctx loc b' a'.T.tty)) intres
      | Ctypes.Tint _, Ctypes.Tptr _ ->
          mk (T.Binop (op, convert ctx loc a' b'.T.tty, b')) intres
      | _ ->
          let ty = Ctypes.common_arith ctx.env ta tb in
          mk (T.Binop (op, convert ctx loc a' ty, convert ctx loc b' ty)) intres)
  | Badd -> (
      match (ta, tb) with
      | Ctypes.Tptr p, Ctypes.Tint _ ->
          mk (T.Ptradd (a', convert ctx loc b' (Ctypes.Tint ILong),
                        size_of ctx p))
            a'.T.tty
      | Ctypes.Tint _, Ctypes.Tptr p ->
          mk (T.Ptradd (b', convert ctx loc a' (Ctypes.Tint ILong),
                        size_of ctx p))
            b'.T.tty
      | _ ->
          let ty = Ctypes.common_arith ctx.env ta tb in
          mk (T.Binop (op, convert ctx loc a' ty, convert ctx loc b' ty)) ty)
  | Bsub -> (
      match (ta, tb) with
      | Ctypes.Tptr p, Ctypes.Tint _ ->
          let negb =
            mk (T.Unop (Uneg, convert ctx loc b' (Ctypes.Tint ILong)))
              (Ctypes.Tint ILong)
          in
          mk (T.Ptradd (a', negb, size_of ctx p)) a'.T.tty
      | Ctypes.Tptr p, Ctypes.Tptr _ ->
          mk (T.Ptrdiff (a', b', size_of ctx p)) (Ctypes.Tint ILong)
      | _ ->
          let ty = Ctypes.common_arith ctx.env ta tb in
          mk (T.Binop (op, convert ctx loc a' ty, convert ctx loc b' ty)) ty)
  | Bmul | Bdiv ->
      let ty = Ctypes.common_arith ctx.env ta tb in
      mk (T.Binop (op, convert ctx loc a' ty, convert ctx loc b' ty)) ty
  | Bmod | Bband | Bbor | Bbxor -> (
      match (ta, tb) with
      | Ctypes.Tint _, Ctypes.Tint _ ->
          let ty = Ctypes.common_arith ctx.env ta tb in
          mk (T.Binop (op, convert ctx loc a' ty, convert ctx loc b' ty)) ty
      | _ -> err loc "integer operator applied to non-integers")
  | Bshl | Bshr -> (
      match (ta, tb) with
      | Ctypes.Tint k, Ctypes.Tint _ ->
          let ty =
            if Ctypes.ikind_size k < 4 then Ctypes.Tint IInt else Ctypes.Tint k
          in
          mk
            (T.Binop (op, convert ctx loc a' ty,
                      convert ctx loc b' (Ctypes.Tint IInt)))
            ty
      | _ -> err loc "shift applied to non-integers")

and index_lval ctx loc a i : T.lval =
  let a' = check_expr ctx a in
  let i' = check_expr ctx i in
  if not (Ctypes.is_integer ctx.env i'.T.tty) then
    err loc "array index must be an integer";
  match resolve ctx a'.T.tty with
  | Ctypes.Tptr p ->
      let addr =
        mk
          (T.Ptradd (a', convert ctx loc i' (Ctypes.Tint ILong), size_of ctx p))
          a'.T.tty
      in
      T.Lmem addr
  | _ -> err loc "indexing a non-pointer (%s)" (Ctypes.string_of_ty a'.T.tty)

and field_lval ctx loc a f : T.lval =
  let lv = check_lval ctx a in
  let lty = T.lval_ty lv in
  match Ctypes.fields_of ctx.env lty with
  | Some comp ->
      let fld = Ctypes.field_of_comp comp f in
      mark_addressed ctx lv;
      let base = mk (T.Addrof lv) (Ctypes.Tptr lty) in
      let addr =
        mk
          (T.Fieldaddr (base, fld.Ctypes.foffset, size_of ctx fld.Ctypes.fty))
          (Ctypes.Tptr fld.Ctypes.fty)
      in
      T.Lmem addr
  | None -> err loc ". applied to non-struct (%s)" (Ctypes.string_of_ty lty)

and arrow_lval ctx loc a f : T.lval =
  let a' = check_expr ctx a in
  match resolve ctx a'.T.tty with
  | Ctypes.Tptr p -> (
      match Ctypes.fields_of ctx.env p with
      | Some comp ->
          let fld = Ctypes.field_of_comp comp f in
          let addr =
            mk
              (T.Fieldaddr (a', fld.Ctypes.foffset, size_of ctx fld.Ctypes.fty))
              (Ctypes.Tptr fld.Ctypes.fty)
          in
          T.Lmem addr
      | None -> err loc "-> applied to pointer to non-struct")
  | _ -> err loc "-> applied to non-pointer"

and check_lval ctx (e : expr) : T.lval =
  let loc = e.eloc in
  match e.edesc with
  | Eident name -> (
      match lookup_var ctx name with
      | Some vr -> T.Lvar vr
      | None -> (
          match Hashtbl.find_opt ctx.globals name with
          | Some ty -> T.Lvar { T.vname = name; vty = ty; vkind = T.Vglobal }
          | None -> err loc "undefined identifier %s" name))
  | Ederef a -> (
      let a' = check_expr ctx a in
      match resolve ctx a'.T.tty with
      | Ctypes.Tptr _ -> T.Lmem a'
      | _ -> err loc "dereference of non-pointer")
  | Eindex (a, i) -> index_lval ctx loc a i
  | Efield (a, f) -> field_lval ctx loc a f
  | Earrow (a, f) -> arrow_lval ctx loc a f
  | _ -> err loc "expression is not an lvalue"

and check_call ctx loc (f : expr) (args : expr list) : T.texpr =
  (* va_* builtins are special-cased: they mutate their lvalue argument. *)
  match (f.edesc, args) with
  | Eident "va_start", [ arg ] ->
      if not ctx.cur_variadic then
        err loc "va_start used outside a variadic function";
      let lv = check_lval ctx arg in
      mk (T.Va_start lv) Ctypes.Tvoid
  | Eident "va_end", [ _ ] -> mk (T.Cint 0L) (Ctypes.Tint IInt)
  | Eident "setbound", [ p; n ] ->
      let lv = check_lval ctx p in
      if not (Ctypes.is_pointer ctx.env (T.lval_ty lv)) then
        err loc "setbound requires a pointer variable";
      mark_addressed ctx lv;
      let n' = check_expr ctx n in
      mk (T.Setbound (lv, convert ctx loc n' (Ctypes.Tint ILong))) Ctypes.Tvoid
  | Eident "va_arg_int", [ arg ] ->
      mk (T.Va_arg (check_lval ctx arg, Ctypes.Tint IInt)) (Ctypes.Tint IInt)
  | Eident "va_arg_long", [ arg ] ->
      mk (T.Va_arg (check_lval ctx arg, Ctypes.Tint ILong)) (Ctypes.Tint ILong)
  | Eident "va_arg_double", [ arg ] ->
      mk
        (T.Va_arg (check_lval ctx arg, Ctypes.Tfloat FDouble))
        (Ctypes.Tfloat FDouble)
  | Eident "va_arg_ptr", [ arg ] ->
      mk
        (T.Va_arg (check_lval ctx arg, Ctypes.Tptr Ctypes.Tvoid))
        (Ctypes.Tptr Ctypes.Tvoid)
  | _ ->
      let cfun, sg =
        match f.edesc with
        | Eident name when lookup_var ctx name = None
                           && not (Hashtbl.mem ctx.globals name) -> (
            match Hashtbl.find_opt ctx.funs name with
            | Some fi -> (T.Cdirect name, fi.fi_sig)
            | None -> err loc "call to undeclared function %s" name)
        | _ -> (
            let f' = check_expr ctx f in
            match resolve ctx f'.T.tty with
            | Ctypes.Tptr p -> (
                match resolve ctx p with
                | Ctypes.Tfunc sg -> (T.Cindirect f', sg)
                | _ -> err loc "call of non-function pointer")
            | Ctypes.Tfunc sg -> (T.Cindirect f', sg)
            | _ -> err loc "call of non-function value")
      in
      let nparams = List.length sg.Ctypes.params in
      let nargs = List.length args in
      if nargs < nparams then err loc "too few arguments in call";
      if nargs > nparams && not sg.Ctypes.variadic then
        err loc "too many arguments in call";
      let args' =
        List.mapi
          (fun i a ->
            let a' = check_expr ctx a in
            if i < nparams then
              convert ctx loc a' (List.nth sg.Ctypes.params i)
            else promote_vararg ctx loc a')
          args
      in
      mk (T.Call ({ T.cfun; csig = sg }, args')) sg.Ctypes.ret

(* ------------------------------------------------------------------ *)
(* Constant evaluation over typed expressions (case labels)             *)
(* ------------------------------------------------------------------ *)

let rec const_int (e : T.texpr) : int64 option =
  match e.T.tdesc with
  | T.Cint v -> Some v
  | T.Cast inner -> const_int inner
  | T.Unop (Uneg, a) -> Option.map Int64.neg (const_int a)
  | T.Unop (Ubnot, a) -> Option.map Int64.lognot (const_int a)
  | T.Binop (op, a, b) -> (
      match (const_int a, const_int b) with
      | Some x, Some y -> (
          let open Int64 in
          match op with
          | Badd -> Some (add x y)
          | Bsub -> Some (sub x y)
          | Bmul -> Some (mul x y)
          | Bdiv -> if y = 0L then None else Some (div x y)
          | Bmod -> if y = 0L then None else Some (rem x y)
          | Bshl -> Some (shift_left x (to_int y))
          | Bshr -> Some (shift_right x (to_int y))
          | Bband -> Some (logand x y)
          | Bbor -> Some (logor x y)
          | Bbxor -> Some (logxor x y)
          | Blt -> Some (if x < y then 1L else 0L)
          | Bgt -> Some (if x > y then 1L else 0L)
          | Ble -> Some (if x <= y then 1L else 0L)
          | Bge -> Some (if x >= y then 1L else 0L)
          | Beq -> Some (if x = y then 1L else 0L)
          | Bne -> Some (if x <> y then 1L else 0L)
          | Bland -> Some (if x <> 0L && y <> 0L then 1L else 0L)
          | Blor -> Some (if x <> 0L || y <> 0L then 1L else 0L))
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Initializers                                                         *)
(* ------------------------------------------------------------------ *)

(** Infer the length of an array declared with [] from its initializer. *)
let infer_array_len ctx loc (elem : Ctypes.ty) (init : Ast.init) : int =
  match init with
  | Ilist items -> List.length items
  | Iexpr { edesc = Estrlit s; _ }
    when (match resolve ctx elem with Ctypes.Tint (IChar | IUChar) -> true
         | _ -> false) ->
      String.length s + 1
  | Iexpr _ -> err loc "cannot infer array size from scalar initializer"

(** Flatten an initializer for [ty] into (byte offset, scalar expr) pairs. *)
let rec flatten_init ctx loc (ty : Ctypes.ty) (init : Ast.init) :
    (int * T.texpr) list =
  match (resolve ctx ty, init) with
  | Ctypes.Tarray (elem, n), Iexpr { edesc = Estrlit s; eloc }
    when (match resolve ctx elem with Ctypes.Tint (IChar | IUChar) -> true
         | _ -> false) ->
      if String.length s + 1 > n then err eloc "string initializer too long";
      let items = ref [] in
      String.iteri
        (fun i c ->
          items :=
            (i, mk (T.Cint (Int64.of_int (Char.code c))) (Ctypes.Tint IChar))
            :: !items)
        s;
      items := (String.length s, mk (T.Cint 0L) (Ctypes.Tint IChar)) :: !items;
      List.rev !items
  | Ctypes.Tarray (elem, n), Ilist items ->
      if List.length items > n then err loc "too many array initializers";
      let esize = size_of ctx elem in
      List.concat
        (List.mapi
           (fun i item ->
             List.map
               (fun (off, e) -> (off + (i * esize), e))
               (flatten_init ctx loc elem item))
           items)
  | (Ctypes.Tstruct _ | Ctypes.Tunion _), Ilist items ->
      let comp = Option.get (Ctypes.fields_of ctx.env ty) in
      if List.length items > List.length comp.Ctypes.cfields then
        err loc "too many struct initializers";
      List.concat
        (List.map2
           (fun (fld : Ctypes.field) item ->
             List.map
               (fun (off, e) -> (off + fld.Ctypes.foffset, e))
               (flatten_init ctx loc fld.Ctypes.fty item))
           (List.filteri (fun i _ -> i < List.length items) comp.Ctypes.cfields)
           items)
  | Ctypes.Tarray _, Iexpr _ -> err loc "array initialized with scalar"
  | _, Iexpr e ->
      let e' = check_expr ctx e in
      [ (0, convert ctx loc e' ty) ]
  | _, Ilist [ item ] -> flatten_init ctx loc ty item
  | _, Ilist _ -> err loc "scalar initialized with brace list"

let check_init ctx loc (ty : Ctypes.ty) (init : Ast.init) : T.init =
  match (resolve ctx ty, init) with
  | (Ctypes.Tarray _ | Ctypes.Tstruct _ | Ctypes.Tunion _), _ ->
      T.Icomposite (flatten_init ctx loc ty init)
  | _, Iexpr e ->
      let e' = check_expr ctx e in
      T.Iscalar (convert ctx loc e' ty)
  | _, Ilist [ Iexpr e ] ->
      let e' = check_expr ctx e in
      T.Iscalar (convert ctx loc e' ty)
  | _, Ilist _ -> err loc "scalar initialized with brace list"

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let rec check_stmt ctx (s : stmt) : T.tstmt list =
  let loc = s.sloc in
  match s.sdesc with
  | Sempty -> []
  | Sexpr e -> [ T.Texpr (check_expr ctx e) ]
  | Sdecl decls -> List.concat_map (check_decl ctx) decls
  | Sblock stmts ->
      push_scope ctx;
      let body = List.concat_map (check_stmt ctx) stmts in
      pop_scope ctx;
      [ T.Tblock body ]
  | Sif (c, then_, else_) ->
      let c' = check_scalar ctx c in
      let t = in_scope ctx (fun () -> check_stmt ctx then_) in
      let e =
        match else_ with
        | None -> []
        | Some s -> in_scope ctx (fun () -> check_stmt ctx s)
      in
      [ T.Tif (c', t, e) ]
  | Swhile (c, body) ->
      let c' = check_scalar ctx c in
      [ T.Twhile (c', in_scope ctx (fun () -> check_stmt ctx body)) ]
  | Sdo (body, c) ->
      let body' = in_scope ctx (fun () -> check_stmt ctx body) in
      [ T.Tdowhile (body', check_scalar ctx c) ]
  | Sfor (init, cond, step, body) ->
      push_scope ctx;
      let init' =
        match init with
        | Fnone -> []
        | Fexpr e -> [ T.Texpr (check_expr ctx e) ]
        | Fdecl ds -> List.concat_map (check_decl ctx) ds
      in
      let cond' = Option.map (check_scalar ctx) cond in
      let step' =
        match step with None -> [] | Some e -> [ T.Texpr (check_expr ctx e) ]
      in
      let body' = in_scope ctx (fun () -> check_stmt ctx body) in
      pop_scope ctx;
      [ T.Tfor (init', cond', step', body') ]
  | Sreturn None ->
      if resolve ctx ctx.cur_ret <> Ctypes.Tvoid then
        err loc "return without a value in non-void function";
      [ T.Treturn None ]
  | Sreturn (Some e) ->
      if resolve ctx ctx.cur_ret = Ctypes.Tvoid then begin
        (* allow 'return (void)expr;' style by evaluating for effect *)
        let e' = check_expr ctx e in
        [ T.Texpr e'; T.Treturn None ]
      end
      else
        let e' = check_expr ctx e in
        [ T.Treturn (Some (convert ctx loc e' ctx.cur_ret)) ]
  | Sbreak -> [ T.Tbreak ]
  | Scontinue -> [ T.Tcontinue ]
  | Sswitch (e, cases) ->
      let e' = check_expr ctx e in
      if not (Ctypes.is_integer ctx.env e'.T.tty) then
        err loc "switch on non-integer";
      let e' = convert ctx loc e' (Ctypes.Tint ILong) in
      let cases' =
        List.map
          (fun c ->
            let labels =
              List.map
                (fun lbl ->
                  let l' = check_expr ctx lbl in
                  match const_int l' with
                  | Some v -> v
                  | None -> err loc "case label is not constant")
                c.cvals
            in
            let labels =
              if c.cis_default && labels = [] then None else Some labels
            in
            (* 'case 1: default:' on one group: treat as default *)
            let labels = if c.cis_default then None else labels in
            let body =
              in_scope ctx (fun () -> List.concat_map (check_stmt ctx) c.cbody)
            in
            (labels, body))
          cases
      in
      [ T.Tswitch (e', cases') ]

and in_scope ctx f =
  push_scope ctx;
  let r = f () in
  pop_scope ctx;
  r

and check_decl ctx (d : decl) : T.tstmt list =
  let ty =
    match resolve ctx d.dty with
    | Ctypes.Tarray (elem, -1) -> (
        match d.dinit with
        | Some init ->
            Ctypes.Tarray (elem, infer_array_len ctx d.dloc elem init)
        | None -> err d.dloc "array %s has unknown size" d.dname)
    | Ctypes.Tfunc _ -> err d.dloc "local function declarations not supported"
    | _ -> d.dty
  in
  if d.dstatic then begin
    (* static storage duration, function-local name: hoist to a uniquely
       named global; the initializer must be a compile-time constant and
       runs once at program start, not per call *)
    ctx.fresh <- ctx.fresh + 1;
    let gname =
      Printf.sprintf "%s.static.%s.%d" ctx.cur_fname d.dname ctx.fresh
    in
    let vr = { T.vname = gname; vty = ty; vkind = T.Vglobal } in
    (match ctx.scopes with
    | s :: _ -> Hashtbl.replace s d.dname vr
    | [] -> err d.dloc "static declaration outside any scope");
    Hashtbl.replace ctx.globals gname ty;
    let tginit = Option.map (fun i -> check_init ctx d.dloc ty i) d.dinit in
    ctx.static_acc <-
      { T.tgname = gname; tgty = ty; tginit } :: ctx.static_acc;
    []
  end
  else
  let vr = declare_local ctx d.dname ty in
  (* fix the accumulated type in case the array size was inferred *)
  (match ctx.locals_acc with
  | (n, _) :: rest when n = vr.T.vname -> ctx.locals_acc <- (n, ty) :: rest
  | _ -> ());
  let vr = { vr with T.vty = ty } in
  (match ctx.scopes with
  | s :: _ -> Hashtbl.replace s d.dname vr
  | [] -> ());
  match d.dinit with
  | None -> []
  | Some init -> [ T.Tlocal_init (vr, check_init ctx d.dloc ty init) ]

(* ------------------------------------------------------------------ *)
(* Program                                                              *)
(* ------------------------------------------------------------------ *)

let check_fundef ctx (f : fundef) : T.tfundef =
  ctx.scopes <- [];
  ctx.locals_acc <- [];
  Hashtbl.reset ctx.addressed;
  ctx.cur_ret <- f.fret;
  ctx.cur_variadic <- f.fvariadic;
  ctx.cur_fname <- f.fname;
  if Ctypes.is_composite ctx.env f.fret then
    err f.floc "%s: struct/union return by value is not supported (use a pointer)"
      f.fname;
  push_scope ctx;
  let params =
    List.map
      (fun (ty, name) ->
        if name = "" then err f.floc "unnamed parameter in definition of %s"
                            f.fname;
        if Ctypes.is_composite ctx.env ty then
          err f.floc "%s: struct/union parameters by value are not supported"
            f.fname;
        ignore (declare_param ctx name ty);
        (name, ty))
      f.fparams
  in
  let body = List.concat_map (check_stmt ctx) f.fbody in
  pop_scope ctx;
  let locals =
    List.rev_map
      (fun (lname, lty) ->
        let laddressed =
          Hashtbl.mem ctx.addressed lname || Ctypes.is_composite ctx.env lty
          || (match resolve ctx lty with Ctypes.Tarray _ -> true | _ -> false)
        in
        { T.lname; lty; laddressed })
      ctx.locals_acc
  in
  let addressed_params =
    List.filter_map
      (fun (n, _) -> if Hashtbl.mem ctx.addressed n then Some n else None)
      params
  in
  {
    T.tfname = f.fname;
    tfsig =
      { Ctypes.ret = f.fret; params = List.map snd params;
        variadic = f.fvariadic };
    tfparams = params;
    tfaddressed_params = addressed_params;
    tflocals = locals;
    tfbody = body;
  }

let check_program (p : program) : T.tprogram =
  let env = p.penv in
  let funs = Hashtbl.create 64 in
  let globals = Hashtbl.create 64 in
  (* seed builtins *)
  List.iter
    (fun (name, sg) ->
      Hashtbl.replace funs name { fi_sig = sg; fi_defined = false })
    Builtins.functions;
  (* pass 1: collect signatures and global types *)
  List.iter
    (function
      | Gfun f ->
          let sg =
            { Ctypes.ret = f.fret; params = List.map fst f.fparams;
              variadic = f.fvariadic }
          in
          Hashtbl.replace funs f.fname { fi_sig = sg; fi_defined = true }
      | Gfundecl { name; sg; _ } ->
          if not (Hashtbl.mem funs name) then
            Hashtbl.replace funs name { fi_sig = sg; fi_defined = false }
      | Gvar { gty; gname; ginit; gloc; _ } ->
          let gty =
            match Ctypes.resolve env gty with
            | Ctypes.Tarray (elem, -1) -> (
                match ginit with
                | Some init ->
                    let ctx0 =
                      {
                        env; funs; globals;
                        scopes = [ Hashtbl.create 1 ];
                        addressed = Hashtbl.create 1;
                        locals_acc = []; fresh = 0;
                        cur_ret = Ctypes.Tvoid; cur_variadic = false;
                        cur_fname = ""; static_acc = [];
                      }
                    in
                    Ctypes.Tarray (elem, infer_array_len ctx0 gloc elem init)
                | None -> err gloc "global array %s has unknown size" gname)
            | _ -> gty
          in
          Hashtbl.replace globals gname gty)
    p.defs;
  let ctx =
    {
      env; funs; globals;
      scopes = [];
      addressed = Hashtbl.create 64;
      locals_acc = [];
      fresh = 0;
      cur_ret = Ctypes.Tvoid;
      cur_variadic = false;
      cur_fname = "";
      static_acc = [];
    }
  in
  (* pass 2: check bodies and global initializers *)
  let tfuns = ref [] and tglobals = ref [] in
  let seen_globals = Hashtbl.create 64 in
  List.iter
    (function
      | Gfun f -> tfuns := check_fundef ctx f :: !tfuns
      | Gfundecl _ -> ()
      | Gvar { gname; ginit; gextern; gloc; _ } ->
          if not (Hashtbl.mem seen_globals gname) then begin
            Hashtbl.replace seen_globals gname ();
            let gty = Hashtbl.find globals gname in
            if not gextern then begin
              ctx.scopes <- [ Hashtbl.create 1 ];
              let tginit =
                Option.map (fun i -> check_init ctx gloc gty i) ginit
              in
              tglobals :=
                { T.tgname = gname; tgty = gty; tginit } :: !tglobals
            end
          end)
    p.defs;
  let textern_funs =
    Hashtbl.fold
      (fun name fi acc ->
        if fi.fi_defined then acc else (name, fi.fi_sig) :: acc)
      funs []
  in
  {
    T.tfuns = List.rev !tfuns;
    tglobals = List.rev !tglobals @ List.rev ctx.static_acc;
    textern_funs;
    tenv = env;
  }

(** Convenience: parse and typecheck a source string. *)
let program_of_string (src : string) : T.tprogram =
  check_program (Parser.parse_string src)
