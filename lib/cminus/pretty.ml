(* MiniC source printer: renders an {!Ast.program} back to concrete
   syntax that re-parses to a structurally identical AST.

   This is the bridge the differential fuzzer relies on: the generator
   builds ASTs, this module prints them, and the normal pipeline
   (lexer -> parser -> typechecker -> lowering) consumes the text, so
   every generated program exercises the same front end as hand-written
   sources.  The round-trip property — [print (parse (print ast))] is
   the same string as [print ast] — is pinned by the fuzz test suite. *)

open Ast

(* ------------------------------------------------------------------ *)
(* Types and declarators                                                *)
(* ------------------------------------------------------------------ *)

let base_type_name (ty : Ctypes.ty) : string =
  match ty with
  | Ctypes.Tvoid -> "void"
  | Ctypes.Tint IChar -> "char"
  | Ctypes.Tint IUChar -> "unsigned char"
  | Ctypes.Tint IShort -> "short"
  | Ctypes.Tint IUShort -> "unsigned short"
  | Ctypes.Tint IInt -> "int"
  | Ctypes.Tint IUInt -> "unsigned int"
  | Ctypes.Tint ILong -> "long"
  | Ctypes.Tint IULong -> "unsigned long"
  | Ctypes.Tfloat FFloat -> "float"
  | Ctypes.Tfloat FDouble -> "double"
  | Ctypes.Tstruct n -> "struct " ^ n
  | Ctypes.Tunion n -> "union " ^ n
  | Ctypes.Tnamed n -> n
  | Ctypes.Tptr _ | Ctypes.Tarray _ | Ctypes.Tfunc _ ->
      invalid_arg "base_type_name: derived type"

(** C declarator syntax: [decl_string ty "x"] is the text declaring [x]
    of type [ty] — e.g. ["int ( *x)(long)"] without the space, or
    ["char *x[4]"]. *)
let rec decl_string (ty : Ctypes.ty) (inner : string) : string =
  match ty with
  | Ctypes.Tptr t ->
      let inner = "*" ^ inner in
      (* pointer binds weaker than [] and (): parenthesize through
         array and function layers *)
      (match t with
      | Ctypes.Tarray _ | Ctypes.Tfunc _ -> decl_string t ("(" ^ inner ^ ")")
      | _ -> decl_string t inner)
  | Ctypes.Tarray (t, n) -> decl_string t (Printf.sprintf "%s[%d]" inner n)
  | Ctypes.Tfunc sg ->
      let params =
        match sg.Ctypes.params with
        | [] -> if sg.Ctypes.variadic then "..." else "void"
        | ps ->
            String.concat ", " (List.map (fun p -> decl_string p "") ps)
            ^ if sg.Ctypes.variadic then ", ..." else ""
      in
      decl_string sg.Ctypes.ret (Printf.sprintf "%s(%s)" inner params)
  | base ->
      let b = base_type_name base in
      if inner = "" then b else b ^ " " ^ inner

let type_string ty = decl_string ty ""

(* ------------------------------------------------------------------ *)
(* Literals                                                             *)
(* ------------------------------------------------------------------ *)

let is_hex_digit c =
  (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(** Escape one character for a string literal.  [next] is the character
    following it in the source string (a hex escape followed by a hex
    digit would be mis-lexed; the caller splits the literal instead). *)
let escape_char c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | '\\' -> "\\\\"
  | '"' -> "\\\""
  | c when c >= ' ' && c <= '~' -> String.make 1 c
  | c -> Printf.sprintf "\\x%02x" (Char.code c)

let string_lit (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  Buffer.add_char buf '"';
  String.iteri
    (fun i c ->
      let e = escape_char c in
      Buffer.add_string buf e;
      (* a \xNN escape swallows any following hex digits: close and
         reopen the literal (the lexer concatenates adjacent strings) *)
      if
        String.length e = 4
        && e.[0] = '\\'
        && e.[1] = 'x'
        && i + 1 < String.length s
        && is_hex_digit s.[i + 1]
      then Buffer.add_string buf "\" \"")
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let char_lit (c : char) : string =
  match c with
  | '\n' -> "'\\n'"
  | '\t' -> "'\\t'"
  | '\r' -> "'\\r'"
  | '\000' -> "'\\0'"
  | '\\' -> "'\\\\'"
  | '\'' -> "'\\''"
  | c when c >= ' ' && c <= '~' -> Printf.sprintf "'%c'" c
  | c -> Printf.sprintf "'\\x%02x'" (Char.code c)

let int_lit (v : int64) (k : Ctypes.ikind) : string =
  let body v = Int64.to_string v in
  (* negative literals do not exist in the grammar; print them exactly
     as the unary negation they re-parse to ("-51", not "(-51)"), so
     that printing is a fixpoint of parse ∘ print — the caller gives a
     negative literal unary-operator precedence *)
  let wrap s = if Int64.compare v 0L < 0 then "-" ^ s else s in
  let mag = if Int64.compare v 0L < 0 then Int64.neg v else v in
  match k with
  | Ctypes.IInt -> wrap (body mag)
  | Ctypes.ILong -> wrap (body mag ^ "L")
  | Ctypes.IUInt -> wrap (body mag ^ "U")
  | Ctypes.IULong -> wrap (body mag ^ "UL")
  (* kinds with no literal suffix: a cast reconstructs them *)
  | k -> Printf.sprintf "(%s)%s" (base_type_name (Ctypes.Tint k)) (wrap (body mag))

let float_lit (v : float) (k : Ctypes.fkind) : string =
  let s =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.1f" v
    else Printf.sprintf "%.17g" v
  in
  (* like int_lit: a leading '-' re-parses as unary negation; keep the
     text identical to that re-parse's print *)
  match k with Ctypes.FFloat -> s ^ "f" | Ctypes.FDouble -> s

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let binop_info (op : binop) : string * int * bool =
  (* symbol, precedence, left-associative *)
  match op with
  | Bmul -> ("*", 13, true)
  | Bdiv -> ("/", 13, true)
  | Bmod -> ("%", 13, true)
  | Badd -> ("+", 12, true)
  | Bsub -> ("-", 12, true)
  | Bshl -> ("<<", 11, true)
  | Bshr -> (">>", 11, true)
  | Blt -> ("<", 10, true)
  | Bgt -> (">", 10, true)
  | Ble -> ("<=", 10, true)
  | Bge -> (">=", 10, true)
  | Beq -> ("==", 9, true)
  | Bne -> ("!=", 9, true)
  | Bband -> ("&", 8, true)
  | Bbxor -> ("^", 7, true)
  | Bbor -> ("|", 6, true)
  | Bland -> ("&&", 5, true)
  | Blor -> ("||", 4, true)

let unop_sym = function Uneg -> "-" | Unot -> "!" | Ubnot -> "~"

(** Print [e]; wrap in parens unless its precedence is at least [min_prec]. *)
let rec expr (min_prec : int) (e : expr) : string =
  let prec, s =
    match e.edesc with
    | Eintlit (v, k) ->
        (* a negative literal prints as unary negation, so it gets
           unary-operator precedence; suffix/cast forms carry their own
           parens where needed *)
        ((if Int64.compare v 0L < 0 then 14 else 16), int_lit v k)
    | Efloatlit (v, k) ->
        ((if v < 0.0 || 1.0 /. v = Float.neg_infinity then 14 else 16),
         float_lit v k)
    | Echarlit c -> (16, char_lit c)
    | Estrlit s -> (16, string_lit s)
    | Eident x -> (16, x)
    | Ecall (f, args) ->
        (15, Printf.sprintf "%s(%s)" (expr 15 f)
               (String.concat ", " (List.map (expr 2) args)))
    | Eindex (a, i) -> (15, Printf.sprintf "%s[%s]" (expr 15 a) (expr 1 i))
    | Efield (a, f) -> (15, Printf.sprintf "%s.%s" (expr 15 a) f)
    | Earrow (a, f) -> (15, Printf.sprintf "%s->%s" (expr 15 a) f)
    | Eincrdecr (is_incr, is_prefix, l) ->
        let op = if is_incr then "++" else "--" in
        if is_prefix then (14, op ^ expr 14 l) else (15, expr 15 l ^ op)
    | Eunop (op, a) ->
        (* avoid gluing "- -x" into "--x" *)
        let body = expr 14 a in
        let sym = unop_sym op in
        let sep =
          if String.length body > 0 && String.make 1 body.[0] = sym then " "
          else ""
        in
        (14, sym ^ sep ^ body)
    | Eaddrof a -> (14, "&" ^ expr 14 a)
    | Ederef a -> (14, "*" ^ expr 14 a)
    | Ecast (ty, a) -> (14, Printf.sprintf "(%s)%s" (type_string ty) (expr 14 a))
    | Esizeof_ty ty -> (14, Printf.sprintf "sizeof(%s)" (type_string ty))
    | Esizeof_e a -> (14, Printf.sprintf "sizeof(%s)" (expr 1 a))
    | Ebinop (op, a, b) ->
        let sym, p, _left = binop_info op in
        (p, Printf.sprintf "%s %s %s" (expr p a) sym (expr (p + 1) b))
    | Econd (c, t, f) ->
        (3, Printf.sprintf "%s ? %s : %s" (expr 4 c) (expr 2 t) (expr 3 f))
    | Eassign (op, l, r) ->
        let sym =
          match op with
          | None -> "="
          | Some o ->
              let s, _, _ = binop_info o in
              s ^ "="
        in
        (2, Printf.sprintf "%s %s %s" (expr 14 l) sym (expr 2 r))
    | Ecomma (a, b) -> (1, Printf.sprintf "%s, %s" (expr 2 a) (expr 1 b))
  in
  if prec < min_prec then "(" ^ s ^ ")" else s

let expr_string e = expr 1 e

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let rec init_string = function
  | Iexpr e -> expr 2 e
  | Ilist is ->
      "{ " ^ String.concat ", " (List.map init_string is) ^ " }"

let decl_text (d : decl) : string =
  Printf.sprintf "%s%s%s"
    (if d.dstatic then "static " else "")
    (decl_string d.dty d.dname)
    (match d.dinit with
    | None -> ""
    | Some i -> " = " ^ init_string i)

let decls_text (ds : decl list) : string =
  (* the parser re-splits comma declarations; print one per declarator
     only when they share a base type, otherwise one statement each.
     Simplest faithful form: independent statements joined by "; ". *)
  String.concat "; " (List.map decl_text ds)

let rec stmt (buf : Buffer.t) (ind : int) (s : stmt) : unit =
  let pad = String.make (2 * ind) ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  match s.sdesc with
  | Sempty -> line ";"
  | Sexpr e -> line "%s;" (expr_string e)
  | Sdecl ds -> line "%s;" (decls_text ds)
  | Sreturn None -> line "return;"
  | Sreturn (Some e) -> line "return %s;" (expr_string e)
  | Sbreak -> line "break;"
  | Scontinue -> line "continue;"
  | Sblock ss ->
      line "{";
      List.iter (stmt buf (ind + 1)) ss;
      line "}"
  | Sif (c, t, f) ->
      line "if (%s)" (expr_string c);
      stmt_block buf ind t;
      (match f with
      | None -> ()
      | Some f ->
          line "else";
          stmt_block buf ind f)
  | Swhile (c, b) ->
      line "while (%s)" (expr_string c);
      stmt_block buf ind b
  | Sdo (b, c) ->
      line "do";
      stmt_block buf ind b;
      line "while (%s);" (expr_string c)
  | Sfor (i, c, step, b) ->
      let i_s =
        match i with
        | Fnone -> ""
        | Fdecl ds -> decls_text ds
        | Fexpr e -> expr_string e
      in
      line "for (%s; %s; %s)" i_s
        (match c with None -> "" | Some e -> expr_string e)
        (match step with None -> "" | Some e -> expr_string e);
      stmt_block buf ind b
  | Sswitch (e, cases) ->
      line "switch (%s) {" (expr_string e);
      List.iter
        (fun c ->
          if c.cis_default then line "default:"
          else List.iter (fun v -> line "case %s:" (expr_string v)) c.cvals;
          List.iter (stmt buf (ind + 1)) c.cbody)
        cases;
      line "}"

(** A statement in a control-flow slot: always brace it, so dangling
    elses cannot re-associate on re-parse. *)
and stmt_block buf ind (s : stmt) : unit =
  match s.sdesc with
  | Sblock _ -> stmt buf ind s
  | _ ->
      let pad = String.make (2 * ind) ' ' in
      Buffer.add_string buf (pad ^ "{\n");
      stmt buf (ind + 1) s;
      Buffer.add_string buf (pad ^ "}\n")

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let fundef_text (buf : Buffer.t) (f : fundef) : unit =
  let params =
    match f.fparams with
    | [] -> if f.fvariadic then "..." else "void"
    | ps ->
        String.concat ", " (List.map (fun (t, n) -> decl_string t n) ps)
        ^ if f.fvariadic then ", ..." else ""
  in
  Buffer.add_string buf
    (Printf.sprintf "%s {\n"
       (decl_string f.fret (Printf.sprintf "%s(%s)" f.fname params)));
  List.iter (stmt buf 1) f.fbody;
  Buffer.add_string buf "}\n"

let gdef_text (buf : Buffer.t) (g : gdef) : unit =
  match g with
  | Gfun f -> fundef_text buf f
  | Gfundecl { name; sg; _ } ->
      Buffer.add_string buf
        (decl_string (Ctypes.Tfunc sg) name ^ ";\n")
  | Gvar { gty; gname; ginit; gextern; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s%s;\n"
           (if gextern then "extern " else "")
           (decl_string gty gname)
           (match ginit with
           | None -> ""
           | Some i -> " = " ^ init_string i))

(** Struct/union definitions referenced by the program, in dependency
    order (a composite is printed after any composite its fields embed
    by value).  Anonymous composites (parser-invented [$anon] names)
    cannot be re-declared by name and are skipped — programs meant for
    round-tripping name their composites. *)
let comp_defs_text (env : Ctypes.env) : string =
  let comps =
    Hashtbl.fold
      (fun name c acc ->
        if String.length name > 0 && name.[0] = '$' then acc else c :: acc)
      env.Ctypes.comps []
    |> List.sort (fun a b -> compare a.Ctypes.cname b.Ctypes.cname)
  in
  let rec deps ty acc =
    match ty with
    | Ctypes.Tstruct n | Ctypes.Tunion n -> n :: acc
    | Ctypes.Tarray (t, _) -> deps t acc
    | _ -> acc
  in
  let dep_names (c : Ctypes.comp) =
    List.concat_map (fun f -> deps f.Ctypes.fty []) c.Ctypes.cfields
  in
  (* emit in topological order, ties broken by name *)
  let emitted = Hashtbl.create 8 in
  let buf = Buffer.create 256 in
  let rec emit (c : Ctypes.comp) =
    if not (Hashtbl.mem emitted c.Ctypes.cname) then begin
      Hashtbl.replace emitted c.Ctypes.cname ();
      List.iter
        (fun n ->
          match List.find_opt (fun c -> c.Ctypes.cname = n) comps with
          | Some d -> emit d
          | None -> ())
        (dep_names c);
      Buffer.add_string buf
        (Printf.sprintf "%s %s {\n"
           (if c.Ctypes.cstruct then "struct" else "union")
           c.Ctypes.cname);
      List.iter
        (fun (f : Ctypes.field) ->
          Buffer.add_string buf
            ("  " ^ decl_string f.Ctypes.fty f.Ctypes.fname ^ ";\n"))
        c.Ctypes.cfields;
      Buffer.add_string buf "};\n"
    end
  in
  List.iter emit comps;
  Buffer.contents buf

(** Render a whole translation unit.  Composite definitions come from
    the program's type environment; typedefs beyond the built-in ones
    are not reconstructed (the fuzzer does not generate them). *)
let program_string (p : program) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (comp_defs_text p.penv);
  List.iter
    (fun g ->
      gdef_text buf g;
      Buffer.add_char buf '\n')
    p.defs;
  Buffer.contents buf
