(* Token stream produced by the MiniC lexer. *)

type t =
  | INT_LIT of int64 * Ctypes.ikind
  | FLOAT_LIT of float * Ctypes.fkind
  | CHAR_LIT of char
  | STRING_LIT of string
  | IDENT of string
  (* keywords *)
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG
  | KW_UNSIGNED | KW_SIGNED | KW_FLOAT | KW_DOUBLE
  | KW_STRUCT | KW_UNION | KW_ENUM | KW_TYPEDEF
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_SWITCH | KW_CASE | KW_DEFAULT
  | KW_SIZEOF | KW_EXTERN | KW_STATIC | KW_CONST
  (* punctuation and operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LT | GT | LE | GE | EQEQ | NE
  | ANDAND | OROR | SHL | SHR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | AMPEQ | PIPEEQ | CARETEQ | SHLEQ | SHREQ
  | PLUSPLUS | MINUSMINUS
  | ARROW | DOT | QUESTION | COLON | COMMA | SEMI
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | ELLIPSIS
  | EOF

let to_string = function
  | INT_LIT (i, _) -> Int64.to_string i
  | FLOAT_LIT (f, _) -> string_of_float f
  | CHAR_LIT c -> Printf.sprintf "%C" c
  | STRING_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_VOID -> "void" | KW_CHAR -> "char" | KW_SHORT -> "short"
  | KW_INT -> "int" | KW_LONG -> "long" | KW_UNSIGNED -> "unsigned"
  | KW_SIGNED -> "signed" | KW_FLOAT -> "float" | KW_DOUBLE -> "double"
  | KW_STRUCT -> "struct" | KW_UNION -> "union" | KW_ENUM -> "enum"
  | KW_TYPEDEF -> "typedef" | KW_IF -> "if" | KW_ELSE -> "else"
  | KW_WHILE -> "while" | KW_DO -> "do" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_SWITCH -> "switch" | KW_CASE -> "case" | KW_DEFAULT -> "default"
  | KW_SIZEOF -> "sizeof" | KW_EXTERN -> "extern" | KW_STATIC -> "static"
  | KW_CONST -> "const"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | LT -> "<" | GT -> ">" | LE -> "<=" | GE -> ">=" | EQEQ -> "==" | NE -> "!="
  | ANDAND -> "&&" | OROR -> "||" | SHL -> "<<" | SHR -> ">>"
  | ASSIGN -> "=" | PLUSEQ -> "+=" | MINUSEQ -> "-=" | STAREQ -> "*="
  | SLASHEQ -> "/=" | PERCENTEQ -> "%=" | AMPEQ -> "&=" | PIPEEQ -> "|="
  | CARETEQ -> "^=" | SHLEQ -> "<<=" | SHREQ -> ">>="
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | ARROW -> "->" | DOT -> "." | QUESTION -> "?" | COLON -> ":"
  | COMMA -> "," | SEMI -> ";"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | ELLIPSIS -> "..."
  | EOF -> "<eof>"

let keyword_table : (string * t) list =
  [
    ("void", KW_VOID); ("char", KW_CHAR); ("short", KW_SHORT);
    ("int", KW_INT); ("long", KW_LONG); ("unsigned", KW_UNSIGNED);
    ("signed", KW_SIGNED); ("float", KW_FLOAT); ("double", KW_DOUBLE);
    ("struct", KW_STRUCT); ("union", KW_UNION); ("enum", KW_ENUM);
    ("typedef", KW_TYPEDEF); ("if", KW_IF); ("else", KW_ELSE);
    ("while", KW_WHILE); ("do", KW_DO); ("for", KW_FOR);
    ("return", KW_RETURN); ("break", KW_BREAK); ("continue", KW_CONTINUE);
    ("switch", KW_SWITCH); ("case", KW_CASE); ("default", KW_DEFAULT);
    ("sizeof", KW_SIZEOF); ("extern", KW_EXTERN); ("static", KW_STATIC);
    ("const", KW_CONST);
  ]
