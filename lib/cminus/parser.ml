(* Hand-written recursive-descent parser for MiniC.

   The parser owns a {!Ctypes.env} while parsing because C's grammar needs
   the set of typedef names to disambiguate declarations from expressions
   (the classic [(T)*x] problem). *)

open Ast

exception Parse_error of string * loc

let parse_error loc fmt =
  Format.kasprintf (fun s -> raise (Parse_error (s, loc))) fmt

type state = {
  toks : Lexer.lexed array;
  mutable idx : int;
  env : Ctypes.env;
}

let peek st = st.toks.(st.idx).tok
let peek_at st n =
  let i = st.idx + n in
  if i < Array.length st.toks then st.toks.(i).tok else Token.EOF

let loc st = st.toks.(st.idx).loc
let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let eat st tok =
  if peek st = tok then advance st
  else
    parse_error (loc st) "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (peek st))

let eat_ident st =
  match peek st with
  | Token.IDENT s -> advance st; s
  | t -> parse_error (loc st) "expected identifier but found %s" (Token.to_string t)

let accept st tok = if peek st = tok then (advance st; true) else false

(* ------------------------------------------------------------------ *)
(* Type specifiers                                                     *)
(* ------------------------------------------------------------------ *)

let is_typedef_name st s = Hashtbl.mem st.env.Ctypes.typedefs s

(** Does the current token start a declaration? *)
let starts_type st =
  match peek st with
  | Token.KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_UNSIGNED
  | KW_SIGNED | KW_FLOAT | KW_DOUBLE | KW_STRUCT | KW_UNION | KW_ENUM
  | KW_CONST ->
      true
  | Token.IDENT s -> is_typedef_name st s
  | _ -> false

let fresh_anon =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "$anon%d" !n

(* Forward declarations for mutual recursion. *)
let rec parse_specifiers st : Ctypes.ty =
  (* Consume any 'const' qualifiers (ignored). *)
  let rec skip_quals () = if accept st Token.KW_CONST then skip_quals () in
  skip_quals ();
  let l = loc st in
  let ty =
    match peek st with
    | Token.KW_VOID -> advance st; Ctypes.Tvoid
    | Token.KW_CHAR -> advance st; Ctypes.Tint IChar
    | Token.KW_FLOAT -> advance st; Ctypes.Tfloat FFloat
    | Token.KW_DOUBLE -> advance st; Ctypes.Tfloat FDouble
    | Token.KW_SIGNED | Token.KW_UNSIGNED | Token.KW_SHORT | Token.KW_INT
    | Token.KW_LONG ->
        parse_int_specifier st
    | Token.KW_STRUCT | Token.KW_UNION ->
        let is_struct = peek st = Token.KW_STRUCT in
        advance st;
        parse_comp st ~is_struct
    | Token.KW_ENUM ->
        advance st;
        parse_enum st
    | Token.IDENT s when is_typedef_name st s ->
        advance st;
        Ctypes.Tnamed s
    | t -> parse_error l "expected type specifier, found %s" (Token.to_string t)
  in
  skip_quals ();
  ty

and parse_int_specifier st : Ctypes.ty =
  (* Collect a run of {signed, unsigned, short, int, long}. *)
  let signedness = ref None and longs = ref 0 and shorts = ref 0 in
  let ints = ref 0 and chars = ref 0 in
  let rec go () =
    match peek st with
    | Token.KW_SIGNED -> advance st; signedness := Some true; go ()
    | Token.KW_UNSIGNED -> advance st; signedness := Some false; go ()
    | Token.KW_SHORT -> advance st; incr shorts; go ()
    | Token.KW_LONG -> advance st; incr longs; go ()
    | Token.KW_INT -> advance st; incr ints; go ()
    | Token.KW_CHAR -> advance st; incr chars; go ()
    | Token.KW_CONST -> advance st; go ()
    | _ -> ()
  in
  go ();
  let signed = match !signedness with Some b -> b | None -> true in
  let open Ctypes in
  if !chars > 0 then Tint (if signed then IChar else IUChar)
  else if !shorts > 0 then Tint (if signed then IShort else IUShort)
  else if !longs > 0 then Tint (if signed then ILong else IULong)
  else Tint (if signed then IInt else IUInt)

and parse_comp st ~is_struct : Ctypes.ty =
  let name =
    match peek st with
    | Token.IDENT s -> advance st; s
    | _ -> fresh_anon ()
  in
  if peek st = Token.LBRACE then begin
    advance st;
    let fields = ref [] in
    while peek st <> Token.RBRACE do
      let base = parse_specifiers st in
      let rec decls () =
        let n, wrap = parse_declarator st ~abstract:false in
        let fname = Option.get n in
        fields := (fname, wrap base) :: !fields;
        if accept st Token.COMMA then decls ()
      in
      decls ();
      eat st Token.SEMI
    done;
    eat st Token.RBRACE;
    ignore (Ctypes.define_comp st.env ~is_struct name (List.rev !fields))
  end;
  if is_struct then Ctypes.Tstruct name else Ctypes.Tunion name

and parse_enum st : Ctypes.ty =
  (match peek st with
  | Token.IDENT _ -> advance st
  | _ -> ());
  if peek st = Token.LBRACE then begin
    advance st;
    let next = ref 0L in
    let rec go () =
      match peek st with
      | Token.RBRACE -> ()
      | Token.IDENT name ->
          advance st;
          if accept st Token.ASSIGN then begin
            let e = parse_conditional st in
            next := eval_const st e
          end;
          Hashtbl.replace st.env.Ctypes.enums name !next;
          next := Int64.add !next 1L;
          if accept st Token.COMMA then go ()
      | t -> parse_error (loc st) "bad enum member %s" (Token.to_string t)
    in
    go ();
    eat st Token.RBRACE
  end;
  Ctypes.Tint IInt

(* ------------------------------------------------------------------ *)
(* Declarators                                                          *)
(* ------------------------------------------------------------------ *)

(** Parse a declarator.  Returns the declared name (or [None] for an
    abstract declarator) and a function that builds the full type from the
    base specifier type. *)
and parse_declarator st ~abstract : string option * (Ctypes.ty -> Ctypes.ty) =
  let rec stars () =
    if accept st Token.STAR then begin
      let rec skip_quals () = if accept st Token.KW_CONST then skip_quals () in
      skip_quals ();
      let inner = stars () in
      fun t -> inner (Ctypes.Tptr t)
    end
    else fun t -> t
  in
  let ptr_wrap = stars () in
  let name, dir_wrap = parse_direct_declarator st ~abstract in
  (name, fun t -> dir_wrap (ptr_wrap t))

and parse_direct_declarator st ~abstract :
    string option * (Ctypes.ty -> Ctypes.ty) =
  let name, inner_wrap =
    match peek st with
    | Token.IDENT s ->
        advance st;
        (Some s, fun t -> t)
    | Token.LPAREN
      when (match peek_at st 1 with
           | Token.STAR | Token.LPAREN -> true
           | Token.IDENT s ->
               (* '(' IDENT: nested declarator only if not a typedef name,
                  a typedef name here means a parameter list. *)
               not (is_typedef_name st s)
           | _ -> false) ->
        advance st;
        let n, w = parse_declarator st ~abstract in
        eat st Token.RPAREN;
        (n, w)
    | _ when abstract -> (None, fun t -> t)
    | t -> parse_error (loc st) "expected declarator, found %s" (Token.to_string t)
  in
  let rec suffixes acc =
    match peek st with
    | Token.LBRACKET ->
        advance st;
        let n =
          if peek st = Token.RBRACKET then -1 (* incomplete: decays to ptr *)
          else
            let e = parse_conditional st in
            Int64.to_int (eval_const st e)
        in
        eat st Token.RBRACKET;
        suffixes ((fun t -> Ctypes.Tarray (t, n)) :: acc)
    | Token.LPAREN ->
        advance st;
        let params, variadic = parse_params st in
        eat st Token.RPAREN;
        suffixes
          ((fun t ->
             Ctypes.Tfunc { ret = t; params = List.map snd params; variadic })
          :: acc)
    | _ -> List.rev acc
  in
  let sufs = suffixes [] in
  let suffix_wrap t = List.fold_right (fun s acc -> s acc) sufs t in
  (name, fun t -> inner_wrap (suffix_wrap t))

(** Parameter list (already inside parens).  Returns (name, ty) pairs with
    arrays decayed to pointers, plus the variadic flag. *)
and parse_params st : (string * Ctypes.ty) list * bool =
  if peek st = Token.RPAREN then ([], false)
  else if peek st = Token.KW_VOID && peek_at st 1 = Token.RPAREN then begin
    advance st;
    ([], false)
  end
  else begin
    let params = ref [] and variadic = ref false in
    let rec go () =
      if accept st Token.ELLIPSIS then variadic := true
      else begin
        let base = parse_specifiers st in
        let n, wrap = parse_declarator st ~abstract:true in
        let ty = wrap base in
        let ty =
          match ty with
          | Ctypes.Tarray (t, _) -> Ctypes.Tptr t
          | Ctypes.Tfunc _ -> Ctypes.Tptr ty
          | t -> t
        in
        params := (Option.value n ~default:"", ty) :: !params;
        if accept st Token.COMMA then go ()
      end
    in
    go ();
    (List.rev !params, !variadic)
  end

(** Parse a type-name (for casts and sizeof). *)
and parse_type_name st : Ctypes.ty =
  let base = parse_specifiers st in
  let _, wrap = parse_declarator st ~abstract:true in
  wrap base

(* ------------------------------------------------------------------ *)
(* Constant expression evaluation (array sizes, enum values, case labels) *)
(* ------------------------------------------------------------------ *)

and eval_const st (e : expr) : int64 =
  let ev = eval_const st in
  match e.edesc with
  | Eintlit (v, _) -> v
  | Echarlit c -> Int64.of_int (Char.code c)
  | Eident s -> (
      match Hashtbl.find_opt st.env.Ctypes.enums s with
      | Some v -> v
      | None -> parse_error e.eloc "%s is not a constant" s)
  | Eunop (Uneg, a) -> Int64.neg (ev a)
  | Eunop (Ubnot, a) -> Int64.lognot (ev a)
  | Eunop (Unot, a) -> if ev a = 0L then 1L else 0L
  | Ebinop (op, a, b) -> (
      let x = ev a and y = ev b in
      let open Int64 in
      match op with
      | Badd -> add x y
      | Bsub -> sub x y
      | Bmul -> mul x y
      | Bdiv ->
          if y = 0L then parse_error e.eloc "division by zero in constant"
          else div x y
      | Bmod ->
          if y = 0L then parse_error e.eloc "modulo by zero in constant"
          else rem x y
      | Bshl -> shift_left x (to_int y)
      | Bshr -> shift_right x (to_int y)
      | Bband -> logand x y
      | Bbor -> logor x y
      | Bbxor -> logxor x y
      | Blt -> if x < y then 1L else 0L
      | Bgt -> if x > y then 1L else 0L
      | Ble -> if x <= y then 1L else 0L
      | Bge -> if x >= y then 1L else 0L
      | Beq -> if x = y then 1L else 0L
      | Bne -> if x <> y then 1L else 0L
      | Bland -> if x <> 0L && y <> 0L then 1L else 0L
      | Blor -> if x <> 0L || y <> 0L then 1L else 0L)
  | Econd (c, a, b) -> if ev c <> 0L then ev a else ev b
  | Ecast (_, a) -> ev a
  | Esizeof_ty t -> Int64.of_int (Ctypes.size_of st.env t)
  | _ -> parse_error e.eloc "expression is not constant"

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

and mk l d = { edesc = d; eloc = l }

and parse_expr st : expr =
  let l = loc st in
  let e = parse_assignment st in
  if peek st = Token.COMMA then begin
    advance st;
    let e2 = parse_expr st in
    mk l (Ecomma (e, e2))
  end
  else e

and parse_assignment st : expr =
  let l = loc st in
  let lhs = parse_conditional st in
  let mkassign op =
    advance st;
    let rhs = parse_assignment st in
    mk l (Eassign (op, lhs, rhs))
  in
  match peek st with
  | Token.ASSIGN -> mkassign None
  | Token.PLUSEQ -> mkassign (Some Badd)
  | Token.MINUSEQ -> mkassign (Some Bsub)
  | Token.STAREQ -> mkassign (Some Bmul)
  | Token.SLASHEQ -> mkassign (Some Bdiv)
  | Token.PERCENTEQ -> mkassign (Some Bmod)
  | Token.AMPEQ -> mkassign (Some Bband)
  | Token.PIPEEQ -> mkassign (Some Bbor)
  | Token.CARETEQ -> mkassign (Some Bbxor)
  | Token.SHLEQ -> mkassign (Some Bshl)
  | Token.SHREQ -> mkassign (Some Bshr)
  | _ -> lhs

and parse_conditional st : expr =
  let l = loc st in
  let c = parse_logical_or st in
  if accept st Token.QUESTION then begin
    let a = parse_expr st in
    eat st Token.COLON;
    let b = parse_conditional st in
    mk l (Econd (c, a, b))
  end
  else c

and parse_binop_level st ~ops ~next : expr =
  let l = loc st in
  let rec go lhs =
    match List.assoc_opt (peek st) ops with
    | Some op ->
        advance st;
        let rhs = next st in
        go (mk l (Ebinop (op, lhs, rhs)))
    | None -> lhs
  in
  go (next st)

and parse_logical_or st =
  parse_binop_level st ~ops:[ (Token.OROR, Blor) ] ~next:parse_logical_and

and parse_logical_and st =
  parse_binop_level st ~ops:[ (Token.ANDAND, Bland) ] ~next:parse_bitor

and parse_bitor st =
  parse_binop_level st ~ops:[ (Token.PIPE, Bbor) ] ~next:parse_bitxor

and parse_bitxor st =
  parse_binop_level st ~ops:[ (Token.CARET, Bbxor) ] ~next:parse_bitand

and parse_bitand st =
  parse_binop_level st ~ops:[ (Token.AMP, Bband) ] ~next:parse_equality

and parse_equality st =
  parse_binop_level st
    ~ops:[ (Token.EQEQ, Beq); (Token.NE, Bne) ]
    ~next:parse_relational

and parse_relational st =
  parse_binop_level st
    ~ops:[ (Token.LT, Blt); (Token.GT, Bgt); (Token.LE, Ble); (Token.GE, Bge) ]
    ~next:parse_shift

and parse_shift st =
  parse_binop_level st
    ~ops:[ (Token.SHL, Bshl); (Token.SHR, Bshr) ]
    ~next:parse_additive

and parse_additive st =
  parse_binop_level st
    ~ops:[ (Token.PLUS, Badd); (Token.MINUS, Bsub) ]
    ~next:parse_multiplicative

and parse_multiplicative st =
  parse_binop_level st
    ~ops:[ (Token.STAR, Bmul); (Token.SLASH, Bdiv); (Token.PERCENT, Bmod) ]
    ~next:parse_unary

and parse_unary st : expr =
  let l = loc st in
  match peek st with
  | Token.PLUS ->
      advance st;
      parse_unary st
  | Token.MINUS ->
      advance st;
      mk l (Eunop (Uneg, parse_unary st))
  | Token.BANG ->
      advance st;
      mk l (Eunop (Unot, parse_unary st))
  | Token.TILDE ->
      advance st;
      mk l (Eunop (Ubnot, parse_unary st))
  | Token.STAR ->
      advance st;
      mk l (Ederef (parse_unary st))
  | Token.AMP ->
      advance st;
      mk l (Eaddrof (parse_unary st))
  | Token.PLUSPLUS ->
      advance st;
      mk l (Eincrdecr (true, true, parse_unary st))
  | Token.MINUSMINUS ->
      advance st;
      mk l (Eincrdecr (false, true, parse_unary st))
  | Token.KW_SIZEOF ->
      advance st;
      if peek st = Token.LPAREN && starts_type_at st 1 then begin
        advance st;
        let ty = parse_type_name st in
        eat st Token.RPAREN;
        mk l (Esizeof_ty ty)
      end
      else mk l (Esizeof_e (parse_unary st))
  | Token.LPAREN when starts_type_at st 1 ->
      advance st;
      let ty = parse_type_name st in
      eat st Token.RPAREN;
      mk l (Ecast (ty, parse_unary st))
  | _ -> parse_postfix st

and starts_type_at st n =
  match peek_at st n with
  | Token.KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_UNSIGNED
  | KW_SIGNED | KW_FLOAT | KW_DOUBLE | KW_STRUCT | KW_UNION | KW_ENUM
  | KW_CONST ->
      true
  | Token.IDENT s -> is_typedef_name st s
  | _ -> false

and parse_postfix st : expr =
  let e = parse_primary st in
  parse_postfix_suffixes st e

and parse_postfix_suffixes st e : expr =
  let l = loc st in
  match peek st with
  | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      eat st Token.RBRACKET;
      parse_postfix_suffixes st (mk l (Eindex (e, idx)))
  | Token.LPAREN ->
      advance st;
      let args = ref [] in
      if peek st <> Token.RPAREN then begin
        let rec go () =
          args := parse_assignment st :: !args;
          if accept st Token.COMMA then go ()
        in
        go ()
      end;
      eat st Token.RPAREN;
      parse_postfix_suffixes st (mk l (Ecall (e, List.rev !args)))
  | Token.DOT ->
      advance st;
      let f = eat_ident st in
      parse_postfix_suffixes st (mk l (Efield (e, f)))
  | Token.ARROW ->
      advance st;
      let f = eat_ident st in
      parse_postfix_suffixes st (mk l (Earrow (e, f)))
  | Token.PLUSPLUS ->
      advance st;
      parse_postfix_suffixes st (mk l (Eincrdecr (true, false, e)))
  | Token.MINUSMINUS ->
      advance st;
      parse_postfix_suffixes st (mk l (Eincrdecr (false, false, e)))
  | _ -> e

and parse_primary st : expr =
  let l = loc st in
  match peek st with
  | Token.INT_LIT (v, k) ->
      advance st;
      mk l (Eintlit (v, k))
  | Token.FLOAT_LIT (v, k) ->
      advance st;
      mk l (Efloatlit (v, k))
  | Token.CHAR_LIT c ->
      advance st;
      mk l (Echarlit c)
  | Token.STRING_LIT s ->
      advance st;
      mk l (Estrlit s)
  | Token.IDENT s ->
      advance st;
      mk l (Eident s)
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      eat st Token.RPAREN;
      e
  | t -> parse_error l "expected expression, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Initializers                                                         *)
(* ------------------------------------------------------------------ *)

and parse_init st : init =
  if peek st = Token.LBRACE then begin
    advance st;
    let items = ref [] in
    if peek st <> Token.RBRACE then begin
      let rec go () =
        items := parse_init st :: !items;
        if accept st Token.COMMA && peek st <> Token.RBRACE then go ()
      in
      go ()
    end;
    eat st Token.RBRACE;
    Ilist (List.rev !items)
  end
  else Iexpr (parse_assignment st)

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

and parse_decl_list ?(dstatic = false) st : decl list =
  let base = parse_specifiers st in
  let decls = ref [] in
  let rec go () =
    let dloc = loc st in
    let n, wrap = parse_declarator st ~abstract:false in
    let dname = Option.get n in
    let dty = wrap base in
    let dinit = if accept st Token.ASSIGN then Some (parse_init st) else None in
    decls := { dty; dname; dinit; dstatic; dloc } :: !decls;
    if accept st Token.COMMA then go ()
  in
  go ();
  List.rev !decls

and parse_stmt st : stmt =
  let l = loc st in
  let mks d = { sdesc = d; sloc = l } in
  match peek st with
  | Token.SEMI ->
      advance st;
      mks Sempty
  | Token.LBRACE ->
      advance st;
      let stmts = ref [] in
      while peek st <> Token.RBRACE do
        stmts := parse_stmt st :: !stmts
      done;
      eat st Token.RBRACE;
      mks (Sblock (List.rev !stmts))
  | Token.KW_IF ->
      advance st;
      eat st Token.LPAREN;
      let c = parse_expr st in
      eat st Token.RPAREN;
      let then_ = parse_stmt st in
      let else_ = if accept st Token.KW_ELSE then Some (parse_stmt st) else None in
      mks (Sif (c, then_, else_))
  | Token.KW_WHILE ->
      advance st;
      eat st Token.LPAREN;
      let c = parse_expr st in
      eat st Token.RPAREN;
      mks (Swhile (c, parse_stmt st))
  | Token.KW_DO ->
      advance st;
      let body = parse_stmt st in
      eat st Token.KW_WHILE;
      eat st Token.LPAREN;
      let c = parse_expr st in
      eat st Token.RPAREN;
      eat st Token.SEMI;
      mks (Sdo (body, c))
  | Token.KW_FOR ->
      advance st;
      eat st Token.LPAREN;
      let init =
        if peek st = Token.SEMI then (advance st; Fnone)
        else if starts_type st then begin
          let d = parse_decl_list st in
          eat st Token.SEMI;
          Fdecl d
        end
        else begin
          let e = parse_expr st in
          eat st Token.SEMI;
          Fexpr e
        end
      in
      let cond = if peek st = Token.SEMI then None else Some (parse_expr st) in
      eat st Token.SEMI;
      let step = if peek st = Token.RPAREN then None else Some (parse_expr st) in
      eat st Token.RPAREN;
      mks (Sfor (init, cond, step, parse_stmt st))
  | Token.KW_RETURN ->
      advance st;
      let e = if peek st = Token.SEMI then None else Some (parse_expr st) in
      eat st Token.SEMI;
      mks (Sreturn e)
  | Token.KW_BREAK ->
      advance st;
      eat st Token.SEMI;
      mks Sbreak
  | Token.KW_CONTINUE ->
      advance st;
      eat st Token.SEMI;
      mks Scontinue
  | Token.KW_SWITCH ->
      advance st;
      eat st Token.LPAREN;
      let e = parse_expr st in
      eat st Token.RPAREN;
      eat st Token.LBRACE;
      let cases = ref [] in
      while peek st <> Token.RBRACE do
        let cis_default = ref false in
        let cvals = ref [] in
        let rec labels () =
          match peek st with
          | Token.KW_CASE ->
              advance st;
              cvals := parse_conditional st :: !cvals;
              eat st Token.COLON;
              labels ()
          | Token.KW_DEFAULT ->
              advance st;
              eat st Token.COLON;
              cis_default := true;
              labels ()
          | _ -> ()
        in
        labels ();
        if !cvals = [] && not !cis_default then
          parse_error (loc st) "expected case or default label";
        let body = ref [] in
        while
          peek st <> Token.RBRACE
          && peek st <> Token.KW_CASE
          && peek st <> Token.KW_DEFAULT
        do
          body := parse_stmt st :: !body
        done;
        cases :=
          { cvals = List.rev !cvals; cis_default = !cis_default;
            cbody = List.rev !body }
          :: !cases
      done;
      eat st Token.RBRACE;
      mks (Sswitch (e, List.rev !cases))
  | Token.KW_TYPEDEF ->
      advance st;
      let base = parse_specifiers st in
      let n, wrap = parse_declarator st ~abstract:false in
      Hashtbl.replace st.env.Ctypes.typedefs (Option.get n) (wrap base);
      eat st Token.SEMI;
      mks Sempty
  | Token.KW_STATIC ->
      (* static local: static storage duration, function-local scope *)
      advance st;
      let d = parse_decl_list ~dstatic:true st in
      eat st Token.SEMI;
      mks (Sdecl d)
  | _ when starts_type st ->
      (* Could be a declaration or a struct/union/enum definition. *)
      let d = parse_decl_or_type st in
      (match d with
      | [] -> mks Sempty
      | ds -> mks (Sdecl ds))
  | _ ->
      let e = parse_expr st in
      eat st Token.SEMI;
      mks (Sexpr e)

(** Parse either a declaration list or a pure type definition ending in
    [;] with no declarators (e.g. [struct foo { ... };]). *)
and parse_decl_or_type st : decl list =
  let base = parse_specifiers st in
  if peek st = Token.SEMI then begin
    advance st;
    []
  end
  else begin
    let decls = ref [] in
    let rec go () =
      let dloc = loc st in
      let n, wrap = parse_declarator st ~abstract:false in
      let dname = Option.get n in
      let dty = wrap base in
      let dinit = if accept st Token.ASSIGN then Some (parse_init st) else None in
      decls := { dty; dname; dinit; dstatic = false; dloc } :: !decls;
      if accept st Token.COMMA then go ()
    in
    go ();
    eat st Token.SEMI;
    List.rev !decls
  end

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let rec skip_to_matching_rparen st depth =
  match peek st with
  | Token.LPAREN ->
      advance st;
      skip_to_matching_rparen st (depth + 1)
  | Token.RPAREN ->
      advance st;
      if depth > 1 then skip_to_matching_rparen st (depth - 1)
  | Token.EOF -> parse_error (loc st) "unexpected eof in parameter list"
  | _ ->
      advance st;
      skip_to_matching_rparen st depth

let parse_program_tokens (toks : Lexer.lexed array) : program =
  let env = Ctypes.create_env () in
  Builtins.seed_env env;
  let st = { toks; idx = 0; env } in
  let defs = ref [] in
  (* Top-level parsing with special handling for function definitions so
     that parameter names are retained. *)
  let parse_top () =
    let l = loc st in
    match peek st with
    | Token.KW_TYPEDEF ->
        advance st;
        let base = parse_specifiers st in
        let rec go () =
          let n, wrap = parse_declarator st ~abstract:false in
          Hashtbl.replace st.env.Ctypes.typedefs (Option.get n) (wrap base);
          if accept st Token.COMMA then go ()
        in
        go ();
        eat st Token.SEMI
    | _ ->
        let is_extern = ref false in
        let rec storage () =
          match peek st with
          | Token.KW_EXTERN ->
              advance st;
              is_extern := true;
              storage ()
          | Token.KW_STATIC ->
              advance st;
              storage ()
          | _ -> ()
        in
        storage ();
        let base = parse_specifiers st in
        if accept st Token.SEMI then () (* pure type definition *)
        else begin
          (* Detect the simple function-definition shape:
             stars* IDENT '(' ... ')' '{'  — parse it keeping param names. *)
          let save = st.idx in
          let rec count_stars n =
            match peek st with
            | Token.STAR ->
                advance st;
                count_stars (n + 1)
            | _ -> n
          in
          let nstars = count_stars 0 in
          let is_fundef =
            match (peek st, peek_at st 1) with
            | Token.IDENT _, Token.LPAREN ->
                (* look ahead past the matching rparen *)
                let save2 = st.idx in
                advance st;
                (* at LPAREN *)
                skip_to_matching_rparen st 0;
                let r = peek st = Token.LBRACE in
                st.idx <- save2;
                r
            | _ -> false
          in
          if is_fundef then begin
            let fname = eat_ident st in
            eat st Token.LPAREN;
            let params, variadic = parse_params st in
            eat st Token.RPAREN;
            let ret = ref base in
            for _ = 1 to nstars do
              ret := Ctypes.Tptr !ret
            done;
            eat st Token.LBRACE;
            let stmts = ref [] in
            while peek st <> Token.RBRACE do
              stmts := parse_stmt st :: !stmts
            done;
            eat st Token.RBRACE;
            let fparams = List.map (fun (n, t) -> (t, n)) params in
            defs :=
              Gfun
                {
                  fname;
                  fret = !ret;
                  fparams;
                  fvariadic = variadic;
                  fbody = List.rev !stmts;
                  floc = l;
                }
              :: !defs
          end
          else begin
            st.idx <- save;
            let rec go () =
              let gl = loc st in
              let n, wrap = parse_declarator st ~abstract:false in
              let gname =
                match n with
                | Some s -> s
                | None -> parse_error gl "top-level declarator without a name"
              in
              let gty = wrap base in
              (match gty with
              | Ctypes.Tfunc sg ->
                  defs := Gfundecl { name = gname; sg; loc = gl } :: !defs
              | _ ->
                  let ginit =
                    if accept st Token.ASSIGN then Some (parse_init st) else None
                  in
                  defs :=
                    Gvar { gty; gname; ginit; gextern = !is_extern; gloc = gl }
                    :: !defs);
              if accept st Token.COMMA then go ()
            in
            go ();
            eat st Token.SEMI
          end
        end
  in
  while peek st <> Token.EOF do
    parse_top ()
  done;
  { defs = List.rev !defs; penv = env }

let parse_string (src : string) : program =
  parse_program_tokens (Lexer.tokenize src)
