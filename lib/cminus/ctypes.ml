(* C type representation and memory layout for MiniC.

   The layout rules mirror a conventional LP64 little-endian target (the
   paper evaluates on 64-bit x86): char/short/int/long are 1/2/4/8 bytes,
   pointers are 8 bytes, structs are padded to field alignment. *)

type ikind =
  | IChar
  | IUChar
  | IShort
  | IUShort
  | IInt
  | IUInt
  | ILong
  | IULong
[@@deriving show { with_path = false }, eq]

type fkind = FFloat | FDouble [@@deriving show { with_path = false }, eq]

type ty =
  | Tvoid
  | Tint of ikind
  | Tfloat of fkind
  | Tptr of ty
  | Tarray of ty * int
  | Tstruct of string
  | Tunion of string
  | Tfunc of fsig
  | Tnamed of string  (** typedef reference; resolved via an {!env} *)

and fsig = { ret : ty; params : ty list; variadic : bool }
[@@deriving show { with_path = false }, eq]

type field = { fname : string; fty : ty; foffset : int }
[@@deriving show { with_path = false }]

type comp = {
  cname : string;
  cstruct : bool;  (** [true] for struct, [false] for union *)
  cfields : field list;
  csize : int;
  calign : int;
}
[@@deriving show { with_path = false }]

(** Type environment: composite (struct/union) definitions, typedefs, and
    enum constants. *)
type env = {
  comps : (string, comp) Hashtbl.t;
  typedefs : (string, ty) Hashtbl.t;
  enums : (string, int64) Hashtbl.t;
}

let create_env () =
  {
    comps = Hashtbl.create 16;
    typedefs = Hashtbl.create 16;
    enums = Hashtbl.create 16;
  }

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(** Unfold typedef indirections (but not nested ones inside constructors). *)
let rec resolve env ty =
  match ty with
  | Tnamed n -> (
      match Hashtbl.find_opt env.typedefs n with
      | Some t -> resolve env t
      | None -> type_error "unknown typedef %s" n)
  | t -> t

let find_comp env ~is_struct name =
  match Hashtbl.find_opt env.comps name with
  | Some c when c.cstruct = is_struct -> c
  | Some _ ->
      type_error "%s %s used with mismatching struct/union keyword"
        (if is_struct then "struct" else "union")
        name
  | None ->
      type_error "incomplete %s %s"
        (if is_struct then "struct" else "union")
        name

let ikind_size = function
  | IChar | IUChar -> 1
  | IShort | IUShort -> 2
  | IInt | IUInt -> 4
  | ILong | IULong -> 8

let ikind_signed = function
  | IChar | IShort | IInt | ILong -> true
  | IUChar | IUShort | IUInt | IULong -> false

let fkind_size = function FFloat -> 4 | FDouble -> 8
let ptr_size = 8

let rec size_of env ty =
  match resolve env ty with
  | Tvoid -> 1 (* GNU extension: sizeof(void) = 1, eases void* arithmetic *)
  | Tint k -> ikind_size k
  | Tfloat k -> fkind_size k
  | Tptr _ -> ptr_size
  | Tarray (t, n) -> size_of env t * n
  | Tstruct n -> (find_comp env ~is_struct:true n).csize
  | Tunion n -> (find_comp env ~is_struct:false n).csize
  | Tfunc _ -> type_error "sizeof applied to function type"
  | Tnamed _ -> assert false

let rec align_of env ty =
  match resolve env ty with
  | Tvoid -> 1
  | Tint k -> ikind_size k
  | Tfloat k -> fkind_size k
  | Tptr _ -> ptr_size
  | Tarray (t, _) -> align_of env t
  | Tstruct n -> (find_comp env ~is_struct:true n).calign
  | Tunion n -> (find_comp env ~is_struct:false n).calign
  | Tfunc _ -> type_error "alignof applied to function type"
  | Tnamed _ -> assert false

let align_up x a = (x + a - 1) / a * a

(** Compute field offsets / total size and register the composite. *)
let define_comp env ~is_struct name (raw_fields : (string * ty) list) =
  if raw_fields = [] then
    type_error "%s %s has no fields"
      (if is_struct then "struct" else "union")
      name;
  let offset = ref 0 and align = ref 1 in
  let cfields =
    List.map
      (fun (fname, fty) ->
        let fa = align_of env fty and fs = size_of env fty in
        align := max !align fa;
        if is_struct then begin
          offset := align_up !offset fa;
          let f = { fname; fty; foffset = !offset } in
          offset := !offset + fs;
          f
        end
        else begin
          offset := max !offset fs;
          { fname; fty; foffset = 0 }
        end)
      raw_fields
  in
  let csize = align_up !offset !align in
  let comp = { cname = name; cstruct = is_struct; cfields; csize; calign = !align } in
  Hashtbl.replace env.comps name comp;
  comp

let field_of_comp comp fname =
  match List.find_opt (fun f -> f.fname = fname) comp.cfields with
  | Some f -> f
  | None -> type_error "%s %s has no field %s"
              (if comp.cstruct then "struct" else "union")
              comp.cname fname

(** Fields of a struct/union type, or [None] if not composite. *)
let fields_of env ty =
  match resolve env ty with
  | Tstruct n -> Some (find_comp env ~is_struct:true n)
  | Tunion n -> Some (find_comp env ~is_struct:false n)
  | _ -> None

let is_integer env ty =
  match resolve env ty with Tint _ -> true | _ -> false

let is_float env ty =
  match resolve env ty with Tfloat _ -> true | _ -> false

let is_arith env ty =
  match resolve env ty with Tint _ | Tfloat _ -> true | _ -> false

let is_pointer env ty =
  match resolve env ty with Tptr _ -> true | _ -> false

let is_scalar env ty = is_arith env ty || is_pointer env ty

let is_composite env ty =
  match resolve env ty with Tstruct _ | Tunion _ -> true | _ -> false

(** Does a value of this type contain pointers anywhere inside?  Used by the
    SoftBound transformation for the memcpy heuristic and free-time metadata
    clearing (paper section 5.2). *)
let rec contains_pointer env ty =
  match resolve env ty with
  | Tptr _ -> true
  | Tarray (t, _) -> contains_pointer env t
  | Tstruct _ | Tunion _ ->
      let c = Option.get (fields_of env ty) in
      List.exists (fun f -> contains_pointer env f.fty) c.cfields
  | _ -> false

(** Array-to-pointer and function-to-pointer decay. *)
let decay env ty =
  match resolve env ty with
  | Tarray (t, _) -> Tptr t
  | Tfunc _ as f -> Tptr f
  | t -> t

(** The usual arithmetic conversions (simplified: no int promotion below
    [int]; that matches how MiniC evaluates, all sub-int arithmetic is done
    at [int] width after loads widen). *)
let common_arith env t1 t2 =
  match (resolve env t1, resolve env t2) with
  | Tfloat FDouble, _ | _, Tfloat FDouble -> Tfloat FDouble
  | Tfloat FFloat, _ | _, Tfloat FFloat -> Tfloat FFloat
  | Tint k1, Tint k2 ->
      let rank k = (ikind_size k * 2) + if ikind_signed k then 0 else 1 in
      let k =
        if ikind_size k1 < 4 && ikind_size k2 < 4 then IInt
        else if rank k1 >= rank k2 then k1
        else k2
      in
      let k = if ikind_size k < 4 then IInt else k in
      Tint k
  | _ -> type_error "arithmetic on non-arithmetic types"

let rec string_of_ty ty =
  match ty with
  | Tvoid -> "void"
  | Tint IChar -> "char"
  | Tint IUChar -> "unsigned char"
  | Tint IShort -> "short"
  | Tint IUShort -> "unsigned short"
  | Tint IInt -> "int"
  | Tint IUInt -> "unsigned int"
  | Tint ILong -> "long"
  | Tint IULong -> "unsigned long"
  | Tfloat FFloat -> "float"
  | Tfloat FDouble -> "double"
  | Tptr t -> string_of_ty t ^ "*"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (string_of_ty t) n
  | Tstruct n -> "struct " ^ n
  | Tunion n -> "union " ^ n
  | Tfunc { ret; params; variadic } ->
      Printf.sprintf "%s(*)(%s%s)" (string_of_ty ret)
        (String.concat ", " (List.map string_of_ty params))
        (if variadic then ", ..." else "")
  | Tnamed n -> n

(** Structural compatibility after resolving typedefs. *)
let rec compatible env t1 t2 =
  match (resolve env t1, resolve env t2) with
  | Tvoid, Tvoid -> true
  | Tint k1, Tint k2 -> k1 = k2
  | Tfloat k1, Tfloat k2 -> k1 = k2
  | Tptr a, Tptr b ->
      compatible env a b
      || resolve env a = Tvoid
      || resolve env b = Tvoid
  | Tarray (a, n), Tarray (b, m) -> n = m && compatible env a b
  | Tstruct a, Tstruct b | Tunion a, Tunion b -> a = b
  | Tfunc f1, Tfunc f2 ->
      compatible env f1.ret f2.ret
      && f1.variadic = f2.variadic
      && List.length f1.params = List.length f2.params
      && List.for_all2 (compatible env) f1.params f2.params
  | _ -> false
