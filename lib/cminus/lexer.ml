(* Hand-written lexer for MiniC.

   Preprocessor directives (lines starting with [#]) are skipped so that
   sources carrying [#include] lines lex cleanly — MiniC has an implicit
   libc instead of a preprocessor. *)

type loc = { line : int; col : int }

let pp_loc fmt { line; col } = Format.fprintf fmt "%d:%d" line col
let no_loc = { line = 0; col = 0 }

exception Lex_error of string * loc

let lex_error loc fmt =
  Format.kasprintf (fun s -> raise (Lex_error (s, loc))) fmt

type lexed = { tok : Token.t; loc : loc }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let cur_loc st = { line = st.line; col = st.pos - st.bol + 1 }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '#' when st.pos = st.bol || all_blank_before st ->
      (* preprocessor line: skip to end of line *)
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      let start = cur_loc st in
      advance st;
      advance st;
      let rec find () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            find ()
        | None, _ -> lex_error start "unterminated comment"
      in
      find ();
      skip_trivia st
  | _ -> ()

and all_blank_before st =
  let rec go i =
    if i >= st.pos then true
    else
      match st.src.[i] with ' ' | '\t' -> go (i + 1) | _ -> false
  in
  go st.bol

let read_escape st loc =
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some 'a' -> advance st; '\007'
  | Some 'b' -> advance st; '\b'
  | Some 'f' -> advance st; '\012'
  | Some 'v' -> advance st; '\011'
  | Some 'x' ->
      advance st;
      let v = ref 0 in
      let n = ref 0 in
      while (match peek st with Some c when is_hex c -> true | _ -> false) do
        let c = Option.get (peek st) in
        let d =
          if is_digit c then Char.code c - Char.code '0'
          else (Char.code (Char.lowercase_ascii c) - Char.code 'a') + 10
        in
        v := (!v * 16) + d;
        incr n;
        advance st
      done;
      if !n = 0 then lex_error loc "empty hex escape";
      Char.chr (!v land 0xff)
  | Some c -> lex_error loc "unknown escape sequence \\%c" c
  | None -> lex_error loc "unterminated escape"

let lex_number st =
  let loc = cur_loc st in
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    while (match peek st with Some c when is_hex c -> true | _ -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    let v =
      try Int64.of_string text
      with _ -> lex_error loc "bad hex literal %s" text
    in
    (* optional suffix *)
    let kind = ref Ctypes.IInt in
    (match peek st with
    | Some ('l' | 'L') -> advance st; kind := Ctypes.ILong
    | Some ('u' | 'U') -> advance st; kind := Ctypes.IUInt
    | _ -> ());
    Token.INT_LIT (v, !kind)
  end
  else begin
    while (match peek st with Some c when is_digit c -> true | _ -> false) do
      advance st
    done;
    let is_float =
      (peek st = Some '.' && (match peek2 st with Some c -> is_digit c | None -> false))
      || peek st = Some '.'
      || (match peek st with Some ('e' | 'E') -> true | _ -> false)
    in
    if is_float then begin
      if peek st = Some '.' then begin
        advance st;
        while (match peek st with Some c when is_digit c -> true | _ -> false) do
          advance st
        done
      end;
      (match peek st with
      | Some ('e' | 'E') ->
          advance st;
          (match peek st with
          | Some ('+' | '-') -> advance st
          | _ -> ());
          while (match peek st with Some c when is_digit c -> true | _ -> false) do
            advance st
          done
      | _ -> ());
      let text = String.sub st.src start (st.pos - start) in
      let v =
        try float_of_string text
        with _ -> lex_error loc "bad float literal %s" text
      in
      match peek st with
      | Some ('f' | 'F') ->
          advance st;
          Token.FLOAT_LIT (v, Ctypes.FFloat)
      | _ -> Token.FLOAT_LIT (v, Ctypes.FDouble)
    end
    else begin
      let text = String.sub st.src start (st.pos - start) in
      let v =
        try Int64.of_string text
        with _ -> lex_error loc "bad int literal %s" text
      in
      let kind = ref Ctypes.IInt in
      let rec suffixes () =
        match peek st with
        | Some ('l' | 'L') ->
            advance st;
            kind := (if Ctypes.ikind_signed !kind then Ctypes.ILong else Ctypes.IULong);
            suffixes ()
        | Some ('u' | 'U') ->
            advance st;
            kind := (if !kind = Ctypes.ILong then Ctypes.IULong else Ctypes.IUInt);
            suffixes ()
        | _ -> ()
      in
      suffixes ();
      Token.INT_LIT (v, !kind)
    end
  end

let lex_one st : lexed option =
  skip_trivia st;
  let loc = cur_loc st in
  match peek st with
  | None -> None
  | Some c ->
      let tok =
        if is_digit c then lex_number st
        else if is_ident_start c then begin
          let start = st.pos in
          while (match peek st with Some c when is_ident_char c -> true | _ -> false) do
            advance st
          done;
          let text = String.sub st.src start (st.pos - start) in
          match List.assoc_opt text Token.keyword_table with
          | Some kw -> kw
          | None -> Token.IDENT text
        end
        else if c = '\'' then begin
          advance st;
          let ch =
            match peek st with
            | Some '\\' ->
                advance st;
                read_escape st loc
            | Some c ->
                advance st;
                c
            | None -> lex_error loc "unterminated char literal"
          in
          (match peek st with
          | Some '\'' -> advance st
          | _ -> lex_error loc "unterminated char literal");
          Token.CHAR_LIT ch
        end
        else if c = '"' then begin
          advance st;
          let buf = Buffer.create 16 in
          let rec go () =
            match peek st with
            | Some '"' -> advance st
            | Some '\\' ->
                advance st;
                Buffer.add_char buf (read_escape st loc);
                go ()
            | Some c ->
                advance st;
                Buffer.add_char buf c;
                go ()
            | None -> lex_error loc "unterminated string literal"
          in
          go ();
          (* adjacent string literal concatenation *)
          let rec concat () =
            skip_trivia st;
            match peek st with
            | Some '"' ->
                advance st;
                let rec go () =
                  match peek st with
                  | Some '"' -> advance st
                  | Some '\\' ->
                      advance st;
                      Buffer.add_char buf (read_escape st loc);
                      go ()
                  | Some c ->
                      advance st;
                      Buffer.add_char buf c;
                      go ()
                  | None -> lex_error loc "unterminated string literal"
                in
                go ();
                concat ()
            | _ -> ()
          in
          concat ();
          Token.STRING_LIT (Buffer.contents buf)
        end
        else begin
          let two a = advance st; advance st; a in
          let three a = advance st; advance st; advance st; a in
          let one a = advance st; a in
          match (c, peek2 st) with
          | '.', Some '.'
            when st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '.' ->
              three Token.ELLIPSIS
          | '+', Some '+' -> two Token.PLUSPLUS
          | '+', Some '=' -> two Token.PLUSEQ
          | '+', _ -> one Token.PLUS
          | '-', Some '-' -> two Token.MINUSMINUS
          | '-', Some '=' -> two Token.MINUSEQ
          | '-', Some '>' -> two Token.ARROW
          | '-', _ -> one Token.MINUS
          | '*', Some '=' -> two Token.STAREQ
          | '*', _ -> one Token.STAR
          | '/', Some '=' -> two Token.SLASHEQ
          | '/', _ -> one Token.SLASH
          | '%', Some '=' -> two Token.PERCENTEQ
          | '%', _ -> one Token.PERCENT
          | '&', Some '&' -> two Token.ANDAND
          | '&', Some '=' -> two Token.AMPEQ
          | '&', _ -> one Token.AMP
          | '|', Some '|' -> two Token.OROR
          | '|', Some '=' -> two Token.PIPEEQ
          | '|', _ -> one Token.PIPE
          | '^', Some '=' -> two Token.CARETEQ
          | '^', _ -> one Token.CARET
          | '~', _ -> one Token.TILDE
          | '!', Some '=' -> two Token.NE
          | '!', _ -> one Token.BANG
          | '<', Some '<' ->
              if st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '='
              then three Token.SHLEQ
              else two Token.SHL
          | '<', Some '=' -> two Token.LE
          | '<', _ -> one Token.LT
          | '>', Some '>' ->
              if st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '='
              then three Token.SHREQ
              else two Token.SHR
          | '>', Some '=' -> two Token.GE
          | '>', _ -> one Token.GT
          | '=', Some '=' -> two Token.EQEQ
          | '=', _ -> one Token.ASSIGN
          | '?', _ -> one Token.QUESTION
          | ':', _ -> one Token.COLON
          | ',', _ -> one Token.COMMA
          | ';', _ -> one Token.SEMI
          | '(', _ -> one Token.LPAREN
          | ')', _ -> one Token.RPAREN
          | '{', _ -> one Token.LBRACE
          | '}', _ -> one Token.RBRACE
          | '[', _ -> one Token.LBRACKET
          | ']', _ -> one Token.RBRACKET
          | '.', _ -> one Token.DOT
          | c, _ -> lex_error loc "unexpected character %C" c
        end
      in
      Some { tok; loc }

(** Tokenize a full source string.  The result always ends with [EOF]. *)
let tokenize (src : string) : lexed array =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let acc = ref [] in
  let rec go () =
    match lex_one st with
    | Some l ->
        acc := l :: !acc;
        go ()
    | None -> ()
  in
  go ();
  let eof = { tok = Token.EOF; loc = cur_loc st } in
  Array.of_list (List.rev (eof :: !acc))
