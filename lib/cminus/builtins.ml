(* Built-in typedefs and libc prototypes.

   MiniC has no preprocessor or headers; the standard library surface that
   the benchmarks, attack suite and daemons need is declared here.  The
   interpreter ({!Interp}) provides the implementations over simulated
   memory, and the SoftBound runtime provides checked wrappers for them
   (paper section 5.2, "Separate compilation and library code"). *)

open Ctypes

(** Typedefs visible to every translation unit. *)
let typedefs : (string * ty) list =
  [
    ("size_t", Tint IULong);
    ("ssize_t", Tint ILong);
    ("intptr_t", Tint ILong);
    ("uintptr_t", Tint IULong);
    ("uint8_t", Tint IUChar);
    ("int8_t", Tint IChar);
    ("uint16_t", Tint IUShort);
    ("int16_t", Tint IShort);
    ("uint32_t", Tint IUInt);
    ("int32_t", Tint IInt);
    ("uint64_t", Tint IULong);
    ("int64_t", Tint ILong);
    (* jmp_buf: 8 longs, enough for {pc-token, frame, stack, check-word} *)
    ("jmp_buf", Tarray (Tint ILong, 8));
    (* va_list is an opaque cursor into the vararg save area *)
    ("va_list", Tptr (Tint ILong));
  ]

let sg ?(variadic = false) ret params = { ret; params; variadic }

let charp = Tptr (Tint IChar)
let voidp = Tptr Tvoid
let longt = Tint ILong
let intt = Tint IInt
let dbl = Tfloat FDouble

(** Function prototypes implicitly in scope. *)
let functions : (string * fsig) list =
  [
    (* allocation *)
    ("malloc", sg voidp [ longt ]);
    ("calloc", sg voidp [ longt; longt ]);
    ("realloc", sg voidp [ voidp; longt ]);
    ("free", sg Tvoid [ voidp ]);
    (* memory *)
    ("memcpy", sg voidp [ voidp; voidp; longt ]);
    ("memmove", sg voidp [ voidp; voidp; longt ]);
    ("memset", sg voidp [ voidp; intt; longt ]);
    ("memcmp", sg intt [ voidp; voidp; longt ]);
    (* strings *)
    ("strcpy", sg charp [ charp; charp ]);
    ("strncpy", sg charp [ charp; charp; longt ]);
    ("strcat", sg charp [ charp; charp ]);
    ("strncat", sg charp [ charp; charp; longt ]);
    ("strlen", sg longt [ charp ]);
    ("strcmp", sg intt [ charp; charp ]);
    ("strncmp", sg intt [ charp; charp; longt ]);
    ("strchr", sg charp [ charp; intt ]);
    ("strstr", sg charp [ charp; charp ]);
    ("strdup", sg charp [ charp ]);
    (* sorting/searching: the comparator is interpreted code invoked
       from inside the builtin (re-entrant VM call) *)
    ("qsort",
     sg Tvoid
       [ voidp; longt; longt;
         Tptr (Tfunc { ret = intt; params = [ voidp; voidp ];
                       variadic = false }) ]);
    ("bsearch",
     sg voidp
       [ voidp; voidp; longt; longt;
         Tptr (Tfunc { ret = intt; params = [ voidp; voidp ];
                       variadic = false }) ]);
    (* ctype *)
    ("toupper", sg intt [ intt ]);
    ("tolower", sg intt [ intt ]);
    ("isdigit", sg intt [ intt ]);
    ("isalpha", sg intt [ intt ]);
    ("isspace", sg intt [ intt ]);
    ("isupper", sg intt [ intt ]);
    ("islower", sg intt [ intt ]);
    (* more strings *)
    ("strrchr", sg charp [ charp; intt ]);
    ("memchr", sg voidp [ voidp; intt; longt ]);
    ("strtol", sg longt [ charp; Tptr charp; intt ]);
    (* conversion *)
    ("atoi", sg intt [ charp ]);
    ("atol", sg longt [ charp ]);
    ("atof", sg dbl [ charp ]);
    (* io *)
    ("printf", sg ~variadic:true intt [ charp ]);
    ("sprintf", sg ~variadic:true intt [ charp; charp ]);
    ("snprintf", sg ~variadic:true intt [ charp; longt; charp ]);
    ("puts", sg intt [ charp ]);
    ("putchar", sg intt [ intt ]);
    ("getchar", sg intt []);
    (* simulated network/file IO for the daemon case studies: reads the
       next line from the harness-provided input queue *)
    ("sim_recv", sg intt [ charp; intt ]);
    ("sim_send", sg intt [ charp; intt ]);
    (* misc *)
    ("rand", sg intt []);
    ("srand", sg Tvoid [ Tint IUInt ]);
    ("exit", sg Tvoid [ intt ]);
    ("abort", sg Tvoid []);
    ("assert", sg Tvoid [ intt ]);
    ("abs", sg intt [ intt ]);
    ("labs", sg longt [ longt ]);
    (* math *)
    ("sqrt", sg dbl [ dbl ]);
    ("fabs", sg dbl [ dbl ]);
    ("pow", sg dbl [ dbl; dbl ]);
    ("sin", sg dbl [ dbl ]);
    ("cos", sg dbl [ dbl ]);
    ("exp", sg dbl [ dbl ]);
    ("log", sg dbl [ dbl ]);
    ("floor", sg dbl [ dbl ]);
    ("ceil", sg dbl [ dbl ]);
    (* attack-suite marker: executing this is proof of control-flow
       hijack; the interpreter turns it into a Hijack trap *)
    ("attack_success", sg Tvoid []);
    (* control *)
    ("setjmp", sg intt [ Tptr longt ]);
    ("longjmp", sg Tvoid [ Tptr longt; intt ]);
    (* SoftBound programmer API (paper sections 3.1 and 5.2): explicitly
       set the bounds of a pointer, e.g. for custom allocators *)
    ("setbound", sg Tvoid [ voidp; longt ]);
    (* varargs access; see Typecheck for the special-casing *)
    ("va_start", sg Tvoid [ Tptr longt ]);
    ("va_end", sg Tvoid [ Tptr longt ]);
    ("va_arg_int", sg intt [ Tptr longt ]);
    ("va_arg_long", sg longt [ Tptr longt ]);
    ("va_arg_double", sg dbl [ Tptr longt ]);
    ("va_arg_ptr", sg voidp [ Tptr longt ]);
  ]

let is_builtin name = List.mem_assoc name functions

(** Seed an environment with the builtin typedefs (the parser needs them
    to recognize declaration syntax). *)
let seed_env (env : env) =
  List.iter (fun (n, t) -> Hashtbl.replace env.typedefs n t) typedefs
