(* Untyped abstract syntax for MiniC, produced by the parser.

   The typechecker ({!Typecheck}) elaborates this into the typed AST
   ({!Tast}) consumed by IR lowering. *)

type loc = Lexer.loc

type unop =
  | Uneg   (** arithmetic negation [-e] *)
  | Unot   (** logical not [!e] *)
  | Ubnot  (** bitwise not [~e] *)
[@@deriving show { with_path = false }, eq]

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bshl | Bshr
  | Blt | Bgt | Ble | Bge | Beq | Bne
  | Bband | Bbxor | Bbor
  | Bland | Blor
[@@deriving show { with_path = false }, eq]

type expr = { edesc : edesc; eloc : loc }

and edesc =
  | Eintlit of int64 * Ctypes.ikind
  | Efloatlit of float * Ctypes.fkind
  | Echarlit of char
  | Estrlit of string
  | Eident of string
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eassign of binop option * expr * expr  (** [e1 = e2] or [e1 op= e2] *)
  | Econd of expr * expr * expr
  | Ecast of Ctypes.ty * expr
  | Esizeof_ty of Ctypes.ty
  | Esizeof_e of expr
  | Eaddrof of expr
  | Ederef of expr
  | Eindex of expr * expr
  | Efield of expr * string
  | Earrow of expr * string
  | Ecall of expr * expr list
  | Eincrdecr of bool * bool * expr
      (** [Eincrdecr (is_incr, is_prefix, lvalue)] *)
  | Ecomma of expr * expr

type init = Iexpr of expr | Ilist of init list

type decl = {
  dty : Ctypes.ty;
  dname : string;
  dinit : init option;
  dstatic : bool;  (** a [static] local: function-scoped name, static storage *)
  dloc : loc;
}

type stmt = { sdesc : sdesc; sloc : loc }

and sdesc =
  | Sexpr of expr
  | Sdecl of decl list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of forinit * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sswitch of expr * case list
  | Sempty

and case = {
  cvals : expr list;  (** constant case labels; [[]] means [default] *)
  cis_default : bool;
  cbody : stmt list;
}

and forinit = Fnone | Fdecl of decl list | Fexpr of expr

type fundef = {
  fname : string;
  fret : Ctypes.ty;
  fparams : (Ctypes.ty * string) list;
  fvariadic : bool;
  fbody : stmt list;
  floc : loc;
}

type gdef =
  | Gfun of fundef
  | Gfundecl of {
      name : string;
      sg : Ctypes.fsig;
      loc : loc;
    }
  | Gvar of {
      gty : Ctypes.ty;
      gname : string;
      ginit : init option;
      gextern : bool;
      gloc : loc;
    }

(** A parsed translation unit.  Composite/typedef/enum definitions have
    already been entered into [penv] by the parser (they are needed during
    parsing to disambiguate declarations from expressions). *)
type program = { defs : gdef list; penv : Ctypes.env }
