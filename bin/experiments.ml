(* Regenerate any of the paper's tables/figures by id.

   Usage:
     experiments table1|table3|table4|fig1|fig2|mscc|memory|ablations|all
       [--quick]  run workloads at reduced sizes *)

let usage () =
  prerr_endline
    "usage: experiments \
     <table1|table3|table4|fig1|fig2|mscc|memory|sweep|ablations|elim|\
     breakdown|all> \
     [--quick]";
  exit 2

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let targets = List.filter (fun a -> a <> "--quick") args in
  let targets = if targets = [] then usage () else targets in
  let targets =
    if List.mem "all" targets then
      [ "table1"; "table3"; "table4"; "fig1"; "fig2"; "mscc"; "memory";
        "sweep"; "ablations"; "elim"; "breakdown" ]
    else targets
  in
  List.iter
    (fun t ->
      let out =
        match t with
        | "table1" -> Harness.Exp_table1.(render (run ()))
        | "table3" -> Harness.Exp_table3.(render (run ()))
        | "table4" -> Harness.Exp_table4.(render (run ()))
        | "fig1" -> Harness.Exp_fig1.(render (run ~quick ()))
        | "fig2" -> Harness.Exp_fig2.(render (run ~quick ()))
        | "mscc" -> Harness.Exp_mscc.(render (run ~quick ()))
        | "memory" -> Harness.Exp_memory.(render (run ~quick ()))
        | "sweep" -> Harness.Exp_sweep.(render (run ()))
        | "ablations" -> Harness.Exp_ablation.render ()
        | "elim" ->
            (* also refresh the machine-readable per-kernel record *)
            let rows = Harness.Exp_elim.run ~quick () in
            let oc = open_out "BENCH_elim.json" in
            output_string oc (Harness.Exp_elim.to_json rows);
            close_out oc;
            Harness.Exp_elim.render rows
        | "breakdown" ->
            let rows = Harness.Exp_breakdown.run ~quick () in
            let oc = open_out "BENCH_breakdown.json" in
            output_string oc (Harness.Exp_breakdown.to_json rows);
            close_out oc;
            Harness.Exp_breakdown.render rows
        | other ->
            Printf.eprintf "unknown experiment %s\n" other;
            exit 2
      in
      print_endline out;
      print_newline ())
    targets
