(* Regenerate any of the paper's tables/figures by id.

   Usage:
     experiments table1|table3|table4|fig1|fig2|mscc|memory|ablations|all
       [--quick]  run workloads at reduced sizes *)

let usage () =
  prerr_endline
    "usage: experiments \
     <table1|table3|table4|fig1|fig2|mscc|memory|sweep|ablations|elim|\
     breakdown|vmspeed|serve|adversarial|schemes|bench-check|all> \
     [--quick] [--jobs N] [--iters N]";
  exit 2

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  (* --jobs N / --iters N: parallel width of the experiment driver and
     timed iterations of the vmspeed rows *)
  let int_opt name default =
    let rec go = function
      | flag :: v :: _ when flag = name -> (
          match int_of_string_opt v with Some n -> n | None -> usage ())
      | _ :: rest -> go rest
      | [] -> default
    in
    go args
  in
  let jobs = int_opt "--jobs" 1 in
  let iters = int_opt "--iters" 1 in
  let targets =
    let rec strip = function
      | ("--jobs" | "--iters") :: _ :: rest -> strip rest
      | "--quick" :: rest -> strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  let targets = if targets = [] then usage () else targets in
  let targets =
    if List.mem "all" targets then
      [ "table1"; "table3"; "table4"; "fig1"; "fig2"; "mscc"; "memory";
        "sweep"; "ablations"; "elim"; "breakdown"; "vmspeed"; "serve";
        "adversarial"; "schemes" ]
    else targets
  in
  List.iter
    (fun t ->
      let out =
        match t with
        | "table1" -> Harness.Exp_table1.(render (run ()))
        | "table3" -> Harness.Exp_table3.(render (run ()))
        | "table4" -> Harness.Exp_table4.(render (run ()))
        | "fig1" -> Harness.Exp_fig1.(render (run ~quick ()))
        | "fig2" -> Harness.Exp_fig2.(render (run ~quick ()))
        | "mscc" -> Harness.Exp_mscc.(render (run ~quick ()))
        | "memory" ->
            let rows = Harness.Exp_memory.run ~quick () in
            let oc = open_out "BENCH_memory.json" in
            output_string oc (Harness.Exp_memory.to_json rows);
            close_out oc;
            Harness.Exp_memory.render rows
        | "sweep" -> Harness.Exp_sweep.(render (run ()))
        | "ablations" -> Harness.Exp_ablation.render ()
        | "elim" ->
            (* also refresh the machine-readable per-kernel record *)
            let rows = Harness.Exp_elim.run ~quick ~jobs () in
            let oc = open_out "BENCH_elim.json" in
            output_string oc (Harness.Exp_elim.to_json rows);
            close_out oc;
            Harness.Exp_elim.render rows
        | "breakdown" ->
            let rows = Harness.Exp_breakdown.run ~quick ~jobs () in
            let oc = open_out "BENCH_breakdown.json" in
            output_string oc (Harness.Exp_breakdown.to_json rows);
            close_out oc;
            Harness.Exp_breakdown.render rows
        | "schemes" ->
            let matrix = Harness.Exp_schemes.run ~quick ~jobs () in
            let oc = open_out "BENCH_schemes.json" in
            output_string oc (Harness.Exp_schemes.to_json matrix);
            close_out oc;
            Harness.Exp_schemes.render matrix
        | "vmspeed" ->
            let rows = Harness.Exp_vmspeed.run ~quick ~iters ~jobs () in
            let oc = open_out "BENCH_vmspeed.json" in
            output_string oc (Harness.Exp_vmspeed.to_json ~quick ~iters rows);
            close_out oc;
            Harness.Exp_vmspeed.render rows
        | "serve" ->
            (* sustained-load service benchmark; --quick shrinks the
               stream from 10k to 600 jobs *)
            let total = if quick then Some 600 else None in
            let rows = Harness.Exp_serve.run ~quick ?total () in
            let oc = open_out "BENCH_serve.json" in
            output_string oc (Harness.Exp_serve.to_json ?total rows);
            close_out oc;
            Harness.Exp_serve.render ?total rows
        | "bench-check" ->
            (* validate the committed BENCH_*.json artifacts *)
            let report, ok = Harness.Bench_check.run () in
            if not ok then begin
              prerr_endline report;
              exit 1
            end;
            report
        | "adversarial" ->
            let t = Harness.Exp_adversarial.run ~quick ~jobs () in
            if not (Harness.Exp_adversarial.ok t) then begin
              print_endline (Harness.Exp_adversarial.render t);
              prerr_endline "adversarial: robust safety violated";
              exit 1
            end;
            Harness.Exp_adversarial.render t
        | other ->
            Printf.eprintf "unknown experiment %s\n" other;
            exit 2
      in
      print_endline out;
      print_newline ())
    targets
