(* softbound — command-line driver.

   Compile a MiniC source file, optionally instrument it with SoftBound,
   run it on the simulated machine, and report the outcome and cost
   statistics.

     softbound run prog.c --mode=full --facility=shadow -- arg1 arg2
     softbound run prog.c --unprotected
     softbound run prog.c --checker=mudflap
     softbound dump-ir prog.c [--instrumented]
     softbound check prog.c            # exit 0 iff no violation  *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- shared arguments ---- *)

let src_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"MiniC source file.")

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("full", Softbound.Full_checking);
                  ("store-only", Softbound.Store_only) ])
        Softbound.Full_checking
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Checking mode: $(b,full) or $(b,store-only).")

let facility_arg =
  Arg.(
    value
    & opt (enum [ ("shadow", Softbound.Shadow_space);
                  ("hash", Softbound.Hash_table);
                  ("obj-header", Softbound.Obj_header);
                  ("frame-tag", Softbound.Frame_tag);
                  ("wide-inline", Softbound.Wide_inline) ])
        Softbound.Shadow_space
    & info [ "facility" ] ~docv:"F"
        ~doc:
          "Metadata organization: $(b,shadow), $(b,hash), or a \
           related-work cost model — $(b,obj-header) (CGuard), \
           $(b,frame-tag) (FRAMER), $(b,wide-inline) (L4 Pointer).")

let unprotected_arg =
  Arg.(
    value & flag
    & info [ "unprotected" ] ~doc:"Run without any instrumentation.")

let checker_arg =
  Arg.(
    value
    & opt (some (enum [ ("jones-kelly", `Jk); ("memcheck", `Mc);
                        ("mudflap", `Mf); ("mscc", `Mscc) ]))
        None
    & info [ "checker" ] ~docv:"TOOL"
        ~doc:
          "Run under a baseline tool instead of SoftBound: \
           $(b,jones-kelly), $(b,memcheck), $(b,mudflap) or $(b,mscc).")

let no_shrink_arg =
  Arg.(
    value & flag
    & info [ "no-shrink" ]
        ~doc:"Disable bounds shrinking at struct-field access.")

let no_elim_arg =
  Arg.(
    value & flag
    & info [ "no-elim" ]
        ~doc:
          "Disable the redundant-check elimination / metadata-lookup \
           hoisting pass over the instrumented code.")

let no_widen_arg =
  Arg.(
    value & flag
    & info [ "no-widen" ]
        ~doc:
          "Disable the induction-variable check-widening and in-block \
           coalescing sub-passes of the elimination pass (keeps \
           hoisting and CSE) — the widening ablation's control \
           configuration.")

let fptr_sigs_arg =
  Arg.(
    value & flag
    & info [ "fptr-sigs" ]
        ~doc:
          "Enable dynamic function-pointer signature checking (the            paper's future-work extension).")

let engine_conv =
  let parse s =
    match Softbound.Config.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  Arg.conv
    (parse, fun ppf e -> Format.pp_print_string ppf (Softbound.Config.engine_name e))

let engine_arg =
  Arg.(
    value
    & opt engine_conv Interp.State.default_config.Interp.State.engine
    & info [ "engine" ] ~docv:"E"
        ~doc:
          "Execution engine: $(b,closure) (threaded code compiled at \
           load time, the default) or $(b,decode) (pre-decoded dispatch \
           loop).  Simulated outputs are bit-identical either way; only \
           host speed differs.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print execution statistics.")

let trace_arg =
  Arg.(
    value & opt int 0
    & info [ "trace" ] ~docv:"N"
        ~doc:
          "Record the last $(docv) safety-relevant events (checks, \
           metadata operations, wrapper calls) in a bounded ring buffer \
           and dump them when the program traps.")

let no_obs_arg =
  Arg.(
    value & flag
    & info [ "no-obs" ]
        ~doc:
          "Disable the observability collector (per-site counters and \
           the event ring).  Simulated cycle counts are identical either \
           way; this only skips the host-side bookkeeping.")

let prog_args =
  Arg.(
    value & pos_right 0 string []
    & info [] ~docv:"ARGS" ~doc:"Arguments passed to the program's main().")

let opts_of ?(fptr_sigs = false) ?(no_elim = false) ?(no_widen = false) mode
    facility no_shrink =
  {
    Softbound.Config.default with
    mode;
    facility;
    shrink_bounds = not no_shrink;
    fptr_signatures = fptr_sigs;
    eliminate_checks = not no_elim;
    widen_checks = not no_widen;
  }

let scheme_of unprotected checker mode facility no_shrink fptr_sigs no_elim
    no_widen =
  if unprotected then Harness.Runner.Unprotected
  else
    match checker with
    | Some `Jk -> Harness.Runner.Jones_kelly
    | Some `Mc -> Harness.Runner.Memcheck
    | Some `Mf -> Harness.Runner.Mudflap
    | Some `Mscc -> Harness.Runner.Mscc
    | None ->
        Harness.Runner.Softbound
          (opts_of ~fptr_sigs ~no_elim ~no_widen mode facility no_shrink)

let report_err f =
  try f () with
  | Cminus.Lexer.Lex_error (m, l) ->
      Printf.eprintf "lex error at %d:%d: %s\n" l.Cminus.Lexer.line l.col m;
      exit 2
  | Cminus.Parser.Parse_error (m, l) ->
      Printf.eprintf "parse error at %d:%d: %s\n" l.Cminus.Lexer.line l.col m;
      exit 2
  | Cminus.Typecheck.Error (m, l) ->
      Printf.eprintf "type error at %d:%d: %s\n" l.Cminus.Lexer.line l.col m;
      exit 2
  | Cminus.Ctypes.Type_error m ->
      Printf.eprintf "type error: %s\n" m;
      exit 2
  | Sbir.Lower.Error m ->
      Printf.eprintf "lowering error: %s\n" m;
      exit 2

(* ---- run ---- *)

let run_cmd =
  let doc = "compile, (optionally) instrument, and execute a program" in
  let f src unprotected checker mode facility no_shrink fptr_sigs no_elim
      no_widen engine stats trace no_obs args =
    report_err (fun () ->
        let m = Softbound.compile (read_file src) in
        let scheme =
          scheme_of unprotected checker mode facility no_shrink fptr_sigs
            no_elim no_widen
        in
        let cfg =
          {
            Interp.State.default_config with
            trace_depth = trace;
            obs_enabled = not no_obs;
            engine;
          }
        in
        let r = Harness.Runner.run ~argv:args ~cfg scheme m in
        print_string r.stdout_text;
        Printf.eprintf "[%s] %s\n"
          (Harness.Runner.scheme_name scheme)
          (Interp.State.string_of_outcome r.outcome);
        (match r.outcome with
        | Interp.State.Trapped _ when trace > 0 ->
            prerr_string (Obs.dump_trace r.obs)
        | _ -> ());
        if stats then begin
          let s = r.stats in
          Printf.eprintf
            "insts=%d cycles=%d loads=%d stores=%d ptr-ops=%d checks=%d \
             meta=%d/%d cache-miss=%.1f%% resident=%dKiB heap-peak=%dKiB\n"
            s.Interp.State.insts s.cycles s.mem_reads s.mem_writes
            s.ptr_mem_ops s.checks s.meta_loads s.meta_stores
            (100.0
            *. float_of_int r.cache_misses
            /. float_of_int (max 1 (r.cache_hits + r.cache_misses)))
            (r.resident_bytes / 1024) (r.heap_peak / 1024)
        end;
        match r.outcome with
        | Interp.State.Exit n -> exit n
        | Interp.State.Trapped _ -> exit 125)
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const f $ src_arg $ unprotected_arg $ checker_arg $ mode_arg
      $ facility_arg $ no_shrink_arg $ fptr_sigs_arg $ no_elim_arg
      $ no_widen_arg $ engine_arg $ stats_arg $ trace_arg $ no_obs_arg
      $ prog_args)

(* ---- check ---- *)

let check_cmd =
  let doc =
    "run under SoftBound (full checking unless $(b,--mode) overrides); \
     exit 0 iff no spatial violation"
  in
  let f src mode facility no_elim no_widen engine =
    report_err (fun () ->
        let m = Softbound.compile (read_file src) in
        let r =
          Softbound.run_protected
            ~opts:(opts_of ~no_elim ~no_widen mode facility false)
            ~cfg:{ Interp.State.default_config with engine }
            m
        in
        match r.outcome with
        | Interp.State.Trapped (Interp.State.Bounds_violation _ as t) ->
            Printf.printf "VIOLATION: %s\n" (Interp.State.string_of_trap t);
            exit 1
        | Interp.State.Trapped t ->
            Printf.printf "TRAP: %s\n" (Interp.State.string_of_trap t);
            exit 3
        | Interp.State.Exit _ ->
            print_endline "OK: no spatial violations detected";
            exit 0)
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const f $ src_arg $ mode_arg $ facility_arg $ no_elim_arg $ no_widen_arg
      $ engine_arg)

(* ---- dump-ir ---- *)

let dump_cmd =
  let doc = "print the IR (optionally after SoftBound instrumentation)" in
  let instrumented =
    Arg.(
      value & flag
      & info [ "instrumented" ] ~doc:"Apply the SoftBound pass first.")
  in
  let no_inline =
    Arg.(value & flag & info [ "no-inline" ] ~doc:"Skip the inliner.")
  in
  let f src instr no_inline mode facility no_elim no_widen =
    report_err (fun () ->
        let m = Softbound.compile ~inline:(not no_inline) (read_file src) in
        let m =
          if instr then
            Softbound.instrument
              ~opts:(opts_of ~no_elim ~no_widen mode facility false)
              m
          else m
        in
        print_string (Sbir.Pretty_ir.dump_module m))
  in
  Cmd.v
    (Cmd.info "dump-ir" ~doc)
    Term.(
      const f $ src_arg $ instrumented $ no_inline $ mode_arg $ facility_arg
      $ no_elim_arg $ no_widen_arg)

(* ---- profile ---- *)

let profile_cmd =
  let doc =
    "run a program under SoftBound with the check-level observability \
     collector and report per-site/per-wrapper attribution, site census, \
     per-segment cache traffic, and the overhead breakdown"
  in
  let src_opt_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"MiniC source file (omit when using $(b,--workload)).")
  in
  let workload_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Profile a built-in benchmark kernel instead of a source \
             file (see $(b,--list-workloads)).")
  in
  let list_workloads_arg =
    Arg.(
      value & flag
      & info [ "list-workloads" ] ~doc:"List built-in workload names and exit.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the report as deterministic JSON instead of text.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K"
          ~doc:"How many hottest sites to show in the text report.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"With $(b,--workload): use the reduced argument set.")
  in
  let f src workload list_workloads mode facility no_shrink no_elim no_widen
      engine trace json top quick args =
    if list_workloads then begin
      List.iter print_endline Workloads.names;
      exit 0
    end;
    report_err (fun () ->
        let label, m, argv =
          match (src, workload) with
          | _, Some name -> (
              match Workloads.find name with
              | Some w ->
                  let argv =
                    if args <> [] then args
                    else if quick then w.Workloads.quick_args
                    else []
                  in
                  (name, Harness.Runner.compile_workload w, argv)
              | None ->
                  Printf.eprintf
                    "unknown workload %s (try --list-workloads)\n" name;
                  exit 2)
          | Some src, None ->
              (Filename.basename src, Softbound.compile (read_file src), args)
          | None, None ->
              prerr_endline "profile: need a FILE or --workload NAME";
              exit 2
        in
        let opts = opts_of ~no_elim ~no_widen mode facility no_shrink in
        let cfg =
          { Interp.State.default_config with trace_depth = trace; engine }
        in
        let p = Harness.Profile.profile ~label ~opts ~cfg ~argv m in
        if json then print_string (Harness.Profile.to_json p)
        else begin
          print_string (Harness.Profile.render ~top p);
          match p.Harness.Profile.result.Interp.Vm.outcome with
          | Interp.State.Trapped _ when trace > 0 ->
              print_newline ();
              print_string
                (Obs.dump_trace p.Harness.Profile.result.Interp.Vm.obs)
          | _ -> ()
        end)
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const f $ src_opt_arg $ workload_arg $ list_workloads_arg $ mode_arg
      $ facility_arg $ no_shrink_arg $ no_elim_arg $ no_widen_arg $ engine_arg
      $ trace_arg $ json_arg $ top_arg $ quick_arg $ prog_args)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let doc =
    "differential fuzzing: generate random programs and run them in \
     lock-step under every pipeline configuration, flagging divergence"
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed (reproducible).")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"K" ~doc:"Number of programs to generate.")
  in
  let no_minimize_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Report findings as generated, without minimizing them.")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 20_000_000
      & info [ "max-steps" ] ~docv:"M"
          ~doc:"Per-run instruction budget before a case is skipped.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Evaluate cases on N domains in parallel (0 = all cores). The \
             report is identical to a sequential run: cases are independent \
             and results merge in case order.")
  in
  let adversarial_arg =
    Arg.(
      value & flag
      & info [ "adversarial" ]
          ~doc:
            "Run the robust-safety adversarial campaign instead: generated \
             attacker action sequences against protected components, every \
             action classified caught/confined/escaped.  Exit status is \
             nonzero on any escape.")
  in
  let schemes_arg =
    Arg.(
      value & flag
      & info [ "schemes" ]
          ~doc:
            "Run the N-scheme matrix oracle: each case also runs under \
             every registry scheme (CGuard, FRAMER, L4 Pointer, MSCC, and \
             the baseline checkers), and any divergence not explained by a \
             scheme's documented completeness gap is a finding.")
  in
  let f seed count no_minimize max_steps jobs adversarial schemes =
    let jobs = if jobs = 0 then Parutil.available_jobs () else jobs in
    if adversarial then begin
      let r = Fuzz.Adversary.run_campaign ~jobs ~seed ~count () in
      print_string (Fuzz.Adversary.render r);
      exit
        (if r.Fuzz.Adversary.escaped = 0 && r.Fuzz.Adversary.regression_ok
         then 0
         else 1)
    end;
    let progress k =
      if k > 0 && k mod 20 = 0 then (
        Printf.eprintf "fuzz: %d cases...\n" k;
        flush stderr)
    in
    let r =
      Fuzz.run_campaign ~shrink:(not no_minimize) ~matrix:schemes ~max_steps
        ~progress ~jobs ~seed ~count ()
    in
    print_string (Fuzz.render r);
    exit (if r.Fuzz.findings = [] then 0 else 1)
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const f $ seed_arg $ count_arg $ no_minimize_arg $ max_steps_arg
      $ jobs_arg $ adversarial_arg $ schemes_arg)

(* ---- serve ---- *)

let serve_cmd =
  let doc =
    "long-running checking service: line-delimited JSON jobs on stdin (or \
     a Unix socket), one JSON result line per job, streamed in completion \
     order with the job id echoed back"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Each request is one JSON object per line with an $(b,id) (string \
         or number, echoed back verbatim) and a $(b,type) of $(b,run), \
         $(b,fuzz), $(b,profile) or $(b,adversarial).  Jobs are dispatched \
         across a persistent pool of worker domains; a malformed or \
         crashing job yields an error row, never a dead daemon.  The \
         daemon exits when stdin reaches end-of-file (after draining the \
         queue) or on SIGTERM/SIGINT.  See README.md for the full \
         protocol reference.";
    ]
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains executing jobs in parallel (0 = all cores). \
             Result order is completion order, so it varies with N; ids \
             tie rows to requests.")
  in
  let queue_arg =
    Arg.(
      value & opt int 128
      & info [ "queue" ] ~docv:"K"
          ~doc:
            "Bounded queue depth: reading pauses (backpressure) while \
             $(docv) jobs are waiting.")
  in
  let timeout_arg =
    Arg.(
      value & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Default per-job wall-clock budget; a job past it is \
             abandoned at the next VM poll and answered with a timeout \
             error row.  Jobs may override with their own timeout_ms \
             field.")
  in
  let socket_arg =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) instead of \
             stdin/stdout, serving one client connection at a time until \
             SIGTERM.")
  in
  let f jobs queue timeout_ms socket =
    let jobs = if jobs = 0 then Parutil.available_jobs () else jobs in
    let stop = Atomic.make false in
    List.iter
      (fun s ->
        Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set stop true)))
      [ Sys.sigterm; Sys.sigint ];
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let stop_fn () = Atomic.get stop in
    match socket with
    | Some path ->
        Harness.Serve.serve_socket ~jobs ~cap:queue
          ?default_timeout_ms:timeout_ms ~stop:stop_fn path;
        exit 0
    | None ->
        let read = Harness.Serve.read_lines ~stop:stop_fn Unix.stdin in
        let write s =
          print_string s;
          flush stdout
        in
        let st =
          Harness.Serve.serve ~jobs ~cap:queue ?default_timeout_ms:timeout_ms
            ~read ~write ()
        in
        Printf.eprintf "serve: %d ok, %d failed, %d rejected (%d accepted)\n"
          st.Harness.Serve.completed st.Harness.Serve.errored
          st.Harness.Serve.rejected st.Harness.Serve.accepted;
        exit 0
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(const f $ jobs_arg $ queue_arg $ timeout_arg $ socket_arg)

let main =
  let doc = "SoftBound: complete spatial memory safety for C (simulated)" in
  Cmd.group
    (Cmd.info "softbound" ~version:"1.0.0" ~doc)
    [ run_cmd; check_cmd; dump_cmd; profile_cmd; fuzz_cmd; serve_cmd ]

let () = exit (Cmd.eval main)
