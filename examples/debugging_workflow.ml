(* Debugging workflow: using SoftBound full checking as a development
   tool on a program with a latent read overflow (the BugBench scenario
   of section 6.2 / Table 4).

   The bug is a read that stays *inside* an enclosing struct, so it never
   crashes, never touches a redzone, and silently produces wrong answers
   — the hardest kind to find.  The example shows how each tool class
   responds and how SoftBound's abort message pinpoints the access.

   Run with:  dune exec examples/debugging_workflow.exe *)

let buggy = Attacks.Bugbench.go

let run_with scheme m = Harness.Runner.run scheme m

let describe (r : Interp.Vm.result) =
  match r.outcome with
  | Interp.State.Exit n ->
      Printf.sprintf "ran to completion (exit %d) — bug not noticed" n
  | Interp.State.Trapped t -> Interp.State.string_of_trap t

let () =
  Printf.printf "Debugging a silent read overflow\n";
  Printf.printf "================================\n\n";
  Printf.printf "program: %s\n%s\n\n" buggy.Attacks.Bugbench.name
    buggy.Attacks.Bugbench.description;

  let m = Softbound.compile buggy.Attacks.Bugbench.source in

  Printf.printf "1. plain run:          %s\n"
    (describe (run_with Harness.Runner.Unprotected m));
  Printf.printf "2. memcheck-style:     %s\n"
    (describe (run_with Harness.Runner.Memcheck m));
  Printf.printf "3. mudflap-style:      %s\n"
    (describe (run_with Harness.Runner.Mudflap m));
  Printf.printf "4. softbound (store):  %s\n"
    (describe
       (run_with (Harness.Runner.Softbound Harness.Runner.sb_store_shadow) m));
  Printf.printf "5. softbound (full):   %s\n\n"
    (describe
       (run_with (Harness.Runner.Softbound Harness.Runner.sb_full_shadow) m));

  (* fix the off-by-one and show the clean bill of health *)
  let patch src ~from ~into =
    let rec find i =
      if i + String.length from > String.length src then None
      else if String.sub src i (String.length from) = from then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> failwith ("patch target not found: " ^ from)
    | Some i ->
        String.sub src 0 i ^ into
        ^ String.sub src
            (i + String.length from)
            (String.length src - i - String.length from)
  in
  let fixed_src =
    patch buggy.Attacks.Bugbench.source
      ~from:"n += pos->cells[pt + 1];    /* missing right-edge guard */"
      ~into:"if (pt % 9 != 8) n += pos->cells[pt + 1];"
  in
  let fixed_m = Softbound.compile fixed_src in
  Printf.printf "after fixing the off-by-one:\n";
  Printf.printf "   softbound (full):   %s\n"
    (describe
       (run_with (Harness.Runner.Softbound Harness.Runner.sb_full_shadow)
          fixed_m));
  Printf.printf
    "\nOnly complete spatial checking sees an in-struct read overflow;\n\
     the paper's Table 4 shows the same pattern on the original BugBench\n\
     programs.\n"
