(* Case study (paper section 6.4): applying SoftBound to network daemons
   without touching their source.

   The paper transformed a small FTP server and an HTTP server and ran
   them unmodified, with no false positives.  Here two daemon-style
   request loops — an FTP-flavoured command parser and an HTTP-flavoured
   request handler — are run over benign traffic (must behave
   identically under SoftBound) and over attack traffic (the classic
   long-request overflow must be caught before it lands).

   Run with:  dune exec examples/daemon_hardening.exe *)

let ftp_server =
  {|
/* tinyftp-style command loop: reads lines, dispatches on the verb.
   The CWD handler has the classic bug: a fixed path buffer and an
   unchecked strcpy of the argument. */
char cur_dir[32];
int logged_in;

void handle_user(char *arg) {
  logged_in = 1;
  printf("230 user %s logged in\n", arg);
}

void handle_cwd(char *arg) {
  char path[32];
  strcpy(path, cur_dir);
  strcat(path, "/");
  strcat(path, arg);          /* <- no length check: CVE material */
  strcpy(cur_dir, path);
  printf("250 cwd ok: %s\n", cur_dir);
}

void handle_retr(char *arg) {
  printf("150 sending %s\n", arg);
  printf("226 done\n");
}

int main(void) {
  char line[128];
  strcpy(cur_dir, "~");
  logged_in = 0;
  while (sim_recv(line, 128) >= 0) {
    char *sp = strchr(line, ' ');
    char *arg = "";
    if (sp != NULL) { *sp = 0; arg = sp + 1; }
    if (strcmp(line, "USER") == 0) handle_user(arg);
    else if (strcmp(line, "CWD") == 0) handle_cwd(arg);
    else if (strcmp(line, "RETR") == 0) handle_retr(arg);
    else if (strcmp(line, "QUIT") == 0) { printf("221 bye\n"); return 0; }
    else printf("500 unknown command\n");
  }
  return 0;
}
|}

let http_server =
  {|
/* nhttpd-style request handler: parses the request line into fixed
   buffers with bounded copies — correct code that must not trip any
   false positive under instrumentation. */
int requests_served;

void serve(char *req) {
  char method[8];
  char path[64];
  int i = 0;
  int j = 0;
  while (req[i] && req[i] != ' ' && i < 7) { method[i] = req[i]; i++; }
  method[i] = 0;
  if (req[i] == ' ') i++;
  while (req[i] && req[i] != ' ' && j < 63) { path[j] = req[i]; i++; j++; }
  path[j] = 0;
  if (strcmp(method, "GET") == 0) {
    printf("HTTP/1.0 200 OK (%s)\n", path);
  } else {
    printf("HTTP/1.0 501 not implemented (%s)\n", method);
  }
  requests_served++;
}

int main(void) {
  char line[256];
  while (sim_recv(line, 256) > 0) serve(line);
  printf("served %d requests\n", requests_served);
  return 0;
}
|}

let benign_ftp =
  [ "USER alice"; "CWD docs"; "RETR paper.pdf"; "QUIT" ]

let attack_ftp =
  [
    "USER eve";
    "CWD "
    ^ String.concat "/" (List.init 12 (fun _ -> "AAAAAAAAAA"));
  ]

let benign_http =
  [ "GET /index.html HTTP/1.0"; "GET /img/logo.png HTTP/1.0";
    "POST /form HTTP/1.0" ]

let run ?(opts = Softbound.Config.default) ~protected inputs m =
  let cfg = { Interp.State.default_config with inputs } in
  if protected then Softbound.run_protected ~opts ~cfg m
  else Softbound.run_unprotected ~cfg m

let () =
  print_endline "Daemon hardening case study (paper section 6.4)\n";

  let ftp = Softbound.compile ftp_server in
  let http = Softbound.compile http_server in

  (* 1. compatibility: benign traffic, identical behaviour *)
  let ftp_plain = run ~protected:false benign_ftp ftp in
  let ftp_prot = run ~protected:true benign_ftp ftp in
  Printf.printf "[ftp] benign traffic, unmodified source: output %s\n"
    (if ftp_plain.stdout_text = ftp_prot.stdout_text
        && ftp_prot.outcome = Interp.State.Exit 0
     then "IDENTICAL under SoftBound (no false positives)"
     else "DIFFERS (!)" );
  print_string ftp_prot.stdout_text;

  let http_plain = run ~protected:false benign_http http in
  let http_prot = run ~protected:true benign_http http in
  Printf.printf "\n[http] benign traffic: output %s\n"
    (if http_plain.stdout_text = http_prot.stdout_text then
       "IDENTICAL under SoftBound"
     else "DIFFERS (!)");
  print_string http_prot.stdout_text;

  (* 2. the attack: a CWD argument long enough to smash the stack *)
  Printf.printf "\n[ftp] oversized CWD, unprotected: %s\n"
    (Interp.State.string_of_outcome (run ~protected:false attack_ftp ftp).outcome);
  Printf.printf "[ftp] oversized CWD, SoftBound full: %s\n"
    (Interp.State.string_of_outcome (run ~protected:true attack_ftp ftp).outcome);
  Printf.printf "[ftp] oversized CWD, store-only: %s\n"
    (Interp.State.string_of_outcome
       (run ~protected:true ~opts:Softbound.Config.store_only attack_ftp ftp)
         .outcome);

  (* 3. the overhead price of protecting the daemon *)
  let base = run ~protected:false benign_ftp ftp in
  let prot = run ~protected:true benign_ftp ftp in
  Printf.printf
    "\n[ftp] simulated cycles: %d unprotected vs %d protected (%.0f%% overhead)\n"
    base.stats.Interp.State.cycles prot.stats.Interp.State.cycles
    (100.0
    *. (float_of_int prot.stats.Interp.State.cycles
        /. float_of_int base.stats.Interp.State.cycles
       -. 1.0))
