(* Scheme tour: one benchmark, every protection scheme, side by side.

   Runs the treeadd kernel (the most pointer-intensive workload) under
   the uninstrumented baseline, all four SoftBound configurations, the
   MSCC-style transform, the related-work schemes (CGuard, FRAMER, L4
   Pointer), and the three baseline checkers, printing the cost profile
   of each — a compact, runnable version of the trade-off story
   Figures 1–2 and section 6.5 tell.

   Run with:  dune exec examples/scheme_tour.exe [workload] *)

let schemes : (string * Harness.Runner.scheme) list =
  [
    ("baseline", Harness.Runner.Unprotected);
    ("softbound shadow/full", Harness.Runner.Softbound Harness.Runner.sb_full_shadow);
    ("softbound hash/full", Harness.Runner.Softbound Harness.Runner.sb_full_hash);
    ("softbound shadow/store", Harness.Runner.Softbound Harness.Runner.sb_store_shadow);
    ("softbound hash/store", Harness.Runner.Softbound Harness.Runner.sb_store_hash);
    ("mscc-style", Harness.Runner.Mscc);
    ("cguard", Harness.Runner.Cguard);
    ("framer", Harness.Runner.Framer);
    ("l4-pointer", Harness.Runner.L4_pointer);
    ("jones-kelly", Harness.Runner.Jones_kelly);
    ("memcheck-like", Harness.Runner.Memcheck);
    ("mudflap-like", Harness.Runner.Mudflap);
  ]

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "treeadd" in
  let w =
    match Workloads.find name with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown workload %s (one of: %s)\n" name
          (String.concat ", " Workloads.names);
        exit 2
  in
  Printf.printf "Scheme tour: %s — %s\n\n" w.Workloads.name
    w.Workloads.description;
  let m = Harness.Runner.compile_workload w in
  let base = Harness.Runner.run ~argv:w.quick_args Harness.Runner.Unprotected m in
  Printf.printf "%-24s %12s %10s %8s %11s %10s\n" "scheme" "cycles"
    "overhead" "checks" "meta ops" "miss%";
  Printf.printf "%s\n" (String.make 80 '-');
  List.iter
    (fun (label, scheme) ->
      let r = Harness.Runner.run ~argv:w.quick_args scheme m in
      let s = r.stats in
      (match r.outcome with
      | Interp.State.Exit 0 -> ()
      | o ->
          Printf.printf "%-24s %s\n" label (Interp.State.string_of_outcome o));
      Printf.printf "%-24s %12d %9.0f%% %8d %11d %9.1f%%\n" label
        s.Interp.State.cycles
        (100.0 *. Harness.Runner.overhead r base)
        s.checks
        (s.meta_loads + s.meta_stores)
        (100.0
        *. float_of_int r.cache_misses
        /. float_of_int (max 1 (r.cache_hits + r.cache_misses))))
    schemes;
  Printf.printf
    "\nEvery scheme produced: %s(The outputs are identical across schemes — \
     the compatibility claim.)\n"
    base.stdout_text
