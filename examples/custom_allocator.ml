(* Using the programmer API: setbound() for custom memory allocators
   (paper sections 3.1 and 5.2).

   A pool allocator hands out sub-regions of one big malloc'd arena.  By
   default every sub-allocation inherits the *arena's* bounds, so
   overflows from one pool object into its neighbour are invisible.  A
   single setbound() call in the allocator narrows each object to its
   own extent — and the overflow is caught.

   Run with:  dune exec examples/custom_allocator.exe *)

let pool_without_setbound =
  {|
char *arena;
int arena_used;

void *pool_alloc(int size) {
  char *p = arena + arena_used;
  arena_used += (size + 15) / 16 * 16;
  return (void*)p;
}

int main(void) {
  arena = (char*)malloc(1024);
  arena_used = 0;
  char *a = (char*)pool_alloc(16);
  char *b = (char*)pool_alloc(16);
  b[0] = 'B';
  a[16] = 'X';      /* overflows object a into object b! */
  printf("b[0] is now %c\n", b[0]);
  return 0;
}
|}

let pool_with_setbound =
  {|
char *arena;
int arena_used;

void *pool_alloc(int size) {
  char *p = arena + arena_used;
  arena_used += (size + 15) / 16 * 16;
  setbound(p, size);   /* <- one line: narrow to this object's extent */
  return (void*)p;
}

int main(void) {
  arena = (char*)malloc(1024);
  arena_used = 0;
  char *a = (char*)pool_alloc(16);
  char *b = (char*)pool_alloc(16);
  b[0] = 'B';
  a[16] = 'X';
  printf("b[0] is now %c\n", b[0]);
  return 0;
}
|}

let () =
  print_endline "Custom allocators and setbound()\n";

  let plain = Softbound.run_protected (Softbound.compile pool_without_setbound) in
  Printf.printf
    "pool allocator without setbound, under SoftBound:\n  %s\n  %s\n"
    (String.trim plain.stdout_text)
    (Interp.State.string_of_outcome plain.outcome);
  print_endline
    "  (the overflow stays inside the arena's bounds, so it is missed —\n\
    \   object b was silently corrupted)\n";

  let bounded = Softbound.run_protected (Softbound.compile pool_with_setbound) in
  Printf.printf "pool allocator with setbound(p, size):\n  %s\n"
    (Interp.State.string_of_outcome bounded.outcome);
  print_endline
    "  (each pool object now carries its own bounds; the cross-object\n\
    \   write aborts at the faulting store)";

  (* setbound is a no-op when the program runs uninstrumented *)
  let un = Softbound.run_unprotected (Softbound.compile pool_with_setbound) in
  Printf.printf
    "\nuninstrumented run of the same source: %s (setbound is a no-op)\n"
    (Interp.State.string_of_outcome un.outcome)
