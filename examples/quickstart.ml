(* Quickstart: compile a C program, run it unprotected, watch it corrupt
   memory; run it under SoftBound, watch the overflow get caught at the
   faulting store with precise bounds.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
/* The paper's motivating example (section 2.1): an array inside a
   struct sits right next to a function pointer.  An unchecked strcpy
   through a pointer to the array overwrites the function pointer. */
typedef struct {
  char str[8];
  void (*func)(void);
} node_t;

void greet(void) { printf("hello from greet()\n"); }

int main(void) {
  node_t node;
  char *ptr = node.str;
  node.func = greet;
  strcpy(ptr, "overflow...");   /* 12 bytes into an 8-byte field */
  node.func();                  /* where does this go now? */
  return 0;
}
|}

let show title (r : Interp.Vm.result) =
  Printf.printf "--- %s ---\n" title;
  if r.stdout_text <> "" then print_string r.stdout_text;
  Printf.printf "outcome: %s\n" (Interp.State.string_of_outcome r.outcome);
  Printf.printf "executed %d instructions, %d simulated cycles\n\n"
    r.stats.Interp.State.insts r.stats.Interp.State.cycles

let () =
  print_endline "SoftBound quickstart\n====================\n";

  (* 1. compile once: MiniC -> typed AST -> IR (+ inlining) *)
  let m = Softbound.compile source in

  (* 2. unprotected: the overflow silently smashes node.func *)
  show "unprotected" (Softbound.run_unprotected m);

  (* 3. full checking: the strcpy aborts before any corruption, because
     `ptr` carries the *field's* bounds (8 bytes), not the struct's *)
  show "softbound, full checking" (Softbound.run_protected m);

  (* 4. store-only checking: cheaper, still catches this (it's a write) *)
  show "softbound, store-only"
    (Softbound.run_protected ~opts:Softbound.Config.store_only m);

  (* 5. the same, with the hash-table metadata organization *)
  show "softbound, hash-table metadata"
    (Softbound.run_protected
       ~opts:
         { Softbound.Config.default with
           facility = Softbound.Config.Hash_table }
       m);

  print_endline
    "The overflow is a *sub-object* overflow: it never leaves the\n\
     struct, so object-granularity tools cannot see it.  SoftBound's\n\
     per-pointer bounds, narrowed at field access, catch it at the\n\
     faulting byte."
